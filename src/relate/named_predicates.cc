#include "relate/named_predicates.h"

#include "common/coverage.h"
#include "geom/predicates.h"
#include "relate/relate.h"

namespace spatter::relate {

using geom::Geometry;
using geom::GeomType;

namespace {

bool HasEmptyElement(const Geometry& g) {
  if (!g.IsCollection()) return false;
  bool found = false;
  const auto& coll = geom::AsCollection(g);
  for (size_t i = 0; i < coll.NumElements(); ++i) {
    if (coll.ElementAt(i).IsEmpty() ||
        HasEmptyElement(coll.ElementAt(i))) {
      found = true;
    }
  }
  return found;
}

bool HasClosedLineElement(const Geometry& g, geom::Coord* start_out) {
  bool found = false;
  geom::ForEachBasic(g, [&](const Geometry& basic) {
    if (found) return;
    if (basic.type() == GeomType::kLineString &&
        geom::AsLineString(basic).IsRing()) {
      *start_out = geom::AsLineString(basic).points().front();
      found = true;
    }
  });
  return found;
}

bool HasPointElementInMixed(const Geometry& g) {
  if (g.type() != GeomType::kGeometryCollection) return false;
  bool found = false;
  geom::ForEachBasic(g, [&found](const Geometry& basic) {
    if (basic.type() == GeomType::kPoint && !basic.IsEmpty()) found = true;
  });
  return found;
}

bool SharesEndpoint(const Geometry& a, const Geometry& b) {
  std::vector<geom::Coord> ends_a;
  geom::ForEachBasic(a, [&](const Geometry& basic) {
    if (basic.type() == GeomType::kLineString && !basic.IsEmpty() &&
        !geom::AsLineString(basic).IsClosed()) {
      ends_a.push_back(geom::AsLineString(basic).points().front());
      ends_a.push_back(geom::AsLineString(basic).points().back());
    }
  });
  bool shared = false;
  geom::ForEachBasic(b, [&](const Geometry& basic) {
    if (basic.type() == GeomType::kLineString && !basic.IsEmpty() &&
        !geom::AsLineString(basic).IsClosed()) {
      for (const auto& e : {geom::AsLineString(basic).points().front(),
                            geom::AsLineString(basic).points().back()}) {
        for (const auto& f : ends_a) {
          if (e == f) shared = true;
        }
      }
    }
  });
  return shared;
}

bool IsAreal(const Geometry& g) { return g.Dimension() == 2; }

bool AnyPolygonHasHoles(const Geometry& g) {
  bool holes = false;
  geom::ForEachBasic(g, [&holes](const Geometry& basic) {
    if (basic.type() == GeomType::kPolygon &&
        geom::AsPolygon(basic).NumHoles() > 0) {
      holes = true;
    }
  });
  return holes;
}

// Strips holes from every polygon (used by the overlaps-ignores-holes
// fault emulation).
geom::GeomPtr StripHoles(const Geometry& g) {
  geom::GeomPtr out = g.Clone();
  std::function<void(Geometry*)> rec = [&rec](Geometry* cur) {
    if (cur->type() == GeomType::kPolygon) {
      auto* poly = static_cast<geom::Polygon*>(cur);
      if (poly->NumRings() > 1) poly->mutable_rings().resize(1);
    } else if (cur->IsCollection()) {
      auto* coll = static_cast<geom::GeometryCollection*>(cur);
      for (auto& e : coll->mutable_elements()) rec(e.get());
    }
  };
  rec(out.get());
  return out;
}

}  // namespace

Result<IntersectionMatrix> RelateMatrix(const Geometry& a, const Geometry& b,
                                        const PredicateContext& ctx) {
  RelateOptions opts;
  opts.faults = ctx.faults;
  return Relate(a, b, opts);
}

Result<bool> RelatePattern(const Geometry& a, const Geometry& b,
                           const std::string& pattern,
                           const PredicateContext& ctx) {
  SPATTER_ASSIGN_OR_RETURN(IntersectionMatrix im, RelateMatrix(a, b, ctx));
  return im.Matches(pattern);
}

Result<bool> Intersects(const Geometry& a, const Geometry& b,
                        const PredicateContext& ctx) {
  SPATTER_COV("predicate", "intersects");
  if (ctx.faults && (HasEmptyElement(a) || HasEmptyElement(b)) &&
      ctx.faults->Fire(faults::FaultId::kGeosGcEmptyElementIntersects)) {
    // Injected bug: collections with EMPTY elements fall back to an
    // envelope intersection test.
    return a.GetEnvelope().Intersects(b.GetEnvelope());
  }
  SPATTER_ASSIGN_OR_RETURN(bool disjoint, Disjoint(a, b, ctx));
  return !disjoint;
}

Result<bool> Disjoint(const Geometry& a, const Geometry& b,
                      const PredicateContext& ctx) {
  SPATTER_COV("predicate", "disjoint");
  SPATTER_ASSIGN_OR_RETURN(IntersectionMatrix im, RelateMatrix(a, b, ctx));
  return im.Matches("FF*FF****");
}

Result<bool> Within(const Geometry& a, const Geometry& b,
                    const PredicateContext& ctx) {
  SPATTER_COV("predicate", "within");
  SPATTER_ASSIGN_OR_RETURN(IntersectionMatrix im, RelateMatrix(a, b, ctx));
  const bool correct = im.Matches("T*F**F***");
  if (correct && ctx.faults && HasPointElementInMixed(b) &&
      im.At(Location::kInterior, Location::kInterior) == 0 &&
      ctx.faults->Fire(faults::FaultId::kGeosWithinGcPointInterior)) {
    // Injected bug (companion of Listing 6): the interior contribution of a
    // 0-dimensional element inside a MIXED collection is not recognized.
    return false;
  }
  return correct;
}

Result<bool> Contains(const Geometry& a, const Geometry& b,
                      const PredicateContext& ctx) {
  SPATTER_COV("predicate", "contains");
  return Within(b, a, ctx);
}

Result<bool> Covers(const Geometry& a, const Geometry& b,
                    const PredicateContext& ctx) {
  SPATTER_COV("predicate", "covers");
  SPATTER_ASSIGN_OR_RETURN(IntersectionMatrix im, RelateMatrix(a, b, ctx));
  return im.Matches("T*****FF*") || im.Matches("*T****FF*") ||
         im.Matches("***T**FF*") || im.Matches("****T*FF*");
}

Result<bool> CoveredBy(const Geometry& a, const Geometry& b,
                       const PredicateContext& ctx) {
  SPATTER_COV("predicate", "covered_by");
  return Covers(b, a, ctx);
}

Result<bool> Crosses(const Geometry& a, const Geometry& b,
                     const PredicateContext& ctx) {
  SPATTER_COV("predicate", "crosses");
  SPATTER_ASSIGN_OR_RETURN(IntersectionMatrix im, RelateMatrix(a, b, ctx));
  const int da = EffectiveDimension(a, ctx.faults);
  const int db = EffectiveDimension(b, ctx.faults);
  bool result;
  if (da < db) {
    result = im.Matches("T*T******");
  } else if (da > db) {
    result = im.Matches("T*****T**");
  } else if (da == 1 && db == 1) {
    result = im.Matches("0********");
  } else {
    result = false;
  }
  if (!result && da == 1 && db == 1 && ctx.faults && SharesEndpoint(a, b) &&
      im.At(Location::kBoundary, Location::kBoundary) == 0 &&
      ctx.faults->Fire(faults::FaultId::kGeosCrossesSharedEndpoint)) {
    // Injected bug: a shared boundary endpoint is misread as an interior
    // crossing point.
    return true;
  }
  return result;
}

Result<bool> Overlaps(const Geometry& a, const Geometry& b,
                      const PredicateContext& ctx) {
  SPATTER_COV("predicate", "overlaps");
  if (ctx.faults && IsAreal(a) && IsAreal(b) &&
      (AnyPolygonHasHoles(a) || AnyPolygonHasHoles(b)) &&
      ctx.faults->Fire(faults::FaultId::kGeosOverlapsIgnoresHoles)) {
    // Injected bug: the polygon/polygon fast path evaluates shells only.
    const geom::GeomPtr sa = StripHoles(a);
    const geom::GeomPtr sb = StripHoles(b);
    PredicateContext clean;  // avoid recursive re-triggering
    return Overlaps(*sa, *sb, clean);
  }
  SPATTER_ASSIGN_OR_RETURN(IntersectionMatrix im, RelateMatrix(a, b, ctx));
  const int da = EffectiveDimension(a, ctx.faults);
  const int db = EffectiveDimension(b, ctx.faults);
  if (da != db || da < 0) return false;
  if (da == 1) return im.Matches("1*T***T**");
  return im.Matches("T*T***T**");
}

Result<bool> Touches(const Geometry& a, const Geometry& b,
                     const PredicateContext& ctx) {
  SPATTER_COV("predicate", "touches");
  SPATTER_ASSIGN_OR_RETURN(IntersectionMatrix im, RelateMatrix(a, b, ctx));
  const bool correct = im.Matches("FT*******") || im.Matches("F**T*****") ||
                       im.Matches("F***T****");
  if (!correct && ctx.faults) {
    geom::Coord ring_start;
    if ((HasClosedLineElement(a, &ring_start) ||
         HasClosedLineElement(b, &ring_start)) &&
        im.At(Location::kInterior, Location::kInterior) == 0 &&
        ctx.faults->Fire(faults::FaultId::kGeosTouchesClosedLineBoundary)) {
      // Injected bug: the start vertex of a closed line is treated as a
      // boundary point, turning an interior/interior point intersection
      // into an apparent boundary touch.
      return true;
    }
  }
  return correct;
}

Result<bool> TopoEquals(const Geometry& a, const Geometry& b,
                        const PredicateContext& ctx) {
  SPATTER_COV("predicate", "equals");
  SPATTER_ASSIGN_OR_RETURN(IntersectionMatrix im, RelateMatrix(a, b, ctx));
  return im.Matches("T*F**FFF*");
}

}  // namespace spatter::relate
