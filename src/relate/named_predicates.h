// Named topological relationship predicates (paper §2.2), derived from the
// DE-9IM matrix. Several injected GEOS bug hooks live here because the real
// bugs lived in the shared library's predicate fast paths.
#ifndef SPATTER_RELATE_NAMED_PREDICATES_H_
#define SPATTER_RELATE_NAMED_PREDICATES_H_

#include <string>

#include "common/status.h"
#include "faults/fault.h"
#include "geom/geometry.h"
#include "relate/im_matrix.h"

namespace spatter::relate {

struct PredicateContext {
  const faults::FaultState* faults = nullptr;
};

/// DE-9IM matrix of (a, b) honouring injected faults.
Result<IntersectionMatrix> RelateMatrix(const geom::Geometry& a,
                                        const geom::Geometry& b,
                                        const PredicateContext& ctx = {});

/// ST_Relate(a, b, pattern).
Result<bool> RelatePattern(const geom::Geometry& a, const geom::Geometry& b,
                           const std::string& pattern,
                           const PredicateContext& ctx = {});

Result<bool> Intersects(const geom::Geometry& a, const geom::Geometry& b,
                        const PredicateContext& ctx = {});
Result<bool> Disjoint(const geom::Geometry& a, const geom::Geometry& b,
                      const PredicateContext& ctx = {});
Result<bool> Within(const geom::Geometry& a, const geom::Geometry& b,
                    const PredicateContext& ctx = {});
Result<bool> Contains(const geom::Geometry& a, const geom::Geometry& b,
                      const PredicateContext& ctx = {});
Result<bool> Covers(const geom::Geometry& a, const geom::Geometry& b,
                    const PredicateContext& ctx = {});
Result<bool> CoveredBy(const geom::Geometry& a, const geom::Geometry& b,
                       const PredicateContext& ctx = {});
Result<bool> Crosses(const geom::Geometry& a, const geom::Geometry& b,
                     const PredicateContext& ctx = {});
Result<bool> Overlaps(const geom::Geometry& a, const geom::Geometry& b,
                      const PredicateContext& ctx = {});
Result<bool> Touches(const geom::Geometry& a, const geom::Geometry& b,
                     const PredicateContext& ctx = {});
/// Topological equality (ST_Equals), not structural equality.
Result<bool> TopoEquals(const geom::Geometry& a, const geom::Geometry& b,
                        const PredicateContext& ctx = {});

}  // namespace spatter::relate

#endif  // SPATTER_RELATE_NAMED_PREDICATES_H_
