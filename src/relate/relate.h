// The DE-9IM relate computer: evaluates R(g1, g2) of Definition 2.3 for
// arbitrary 2D geometries, including MULTI and MIXED collections and EMPTY
// components.
//
// Algorithm (DESIGN.md §2): node the combined linework of both geometries,
// then classify every node (dim 0) and every split-edge midpoint (dim 1)
// against both geometries with the point locator; dimension-2 entries are
// derived from areal piece classifications plus per-polygon interior-point
// witnesses.
#ifndef SPATTER_RELATE_RELATE_H_
#define SPATTER_RELATE_RELATE_H_

#include "common/status.h"
#include "faults/fault.h"
#include "geom/geometry.h"
#include "geom/predicates.h"
#include "relate/im_matrix.h"

namespace spatter::relate {

struct RelateOptions {
  const faults::FaultState* faults = nullptr;
  /// Predicate tolerance for derived points (noded vertices, midpoints).
  double eps = geom::kDerivedEps;
};

/// Computes the DE-9IM matrix of (a, b). Fails with StatusCode::kCrash when
/// the kGeosCrashRelateNestedGc fault fires (collections nested >= 3 deep).
Result<IntersectionMatrix> Relate(const geom::Geometry& a,
                                  const geom::Geometry& b,
                                  const RelateOptions& opts = {});

/// Maximum collection nesting depth (a basic geometry has depth 0).
int NestingDepth(const geom::Geometry& g);

/// Dimension as seen by the dimension processor. Equals g.Dimension()
/// unless kGeosMixedDimensionFirstElement fires, in which case MIXED
/// geometries report their first element's dimension (the injected GEOS
/// dimension-processor bug).
int EffectiveDimension(const geom::Geometry& g,
                       const faults::FaultState* faults);

}  // namespace spatter::relate

#endif  // SPATTER_RELATE_RELATE_H_
