// Point location against arbitrary geometries, implementing the union
// semantics with interior-priority for 0-dimensional elements and the OGC
// mod-2 rule for line endpoints (DESIGN.md §4). This is the semantic core
// the DE-9IM computer classifies pieces with — and the code site of the
// "last-one-wins" GEOS bug (paper Listing 6), injectable via FaultState.
#ifndef SPATTER_RELATE_POINT_LOCATOR_H_
#define SPATTER_RELATE_POINT_LOCATOR_H_

#include "faults/fault.h"
#include "geom/geometry.h"
#include "relate/im_matrix.h"

namespace spatter::relate {

/// Locates `p` relative to `g` (Interior / Boundary / Exterior).
///
/// Priority rules for mixed collections:
///   1. interior of any areal element        -> Interior
///   2. on a ring of any areal element       -> Boundary
///   3. equal to a point element             -> Interior
///   4. odd endpoint count over line elements-> Boundary   (mod-2 rule)
///   5. on a line element                    -> Interior
///   6. otherwise                            -> Exterior
///
/// With kGeosGcBoundaryLastOneWins enabled, GEOMETRYCOLLECTIONs are instead
/// resolved by taking the location within the *last* element that does not
/// report Exterior — the buggy strategy GEOS developers described.
Location LocatePoint(const geom::Coord& p, const geom::Geometry& g,
                     double eps = 0.0,
                     const faults::FaultState* faults = nullptr);

/// Location relative to only the areal (polygon) components of `g`, with
/// union / interior-priority combination. Used by the relate computer's
/// dimension-2 rules.
Location LocateAreal(const geom::Coord& p, const geom::Geometry& g,
                     double eps = 0.0);

/// True if `g` has at least one non-empty polygon component.
bool HasArealComponent(const geom::Geometry& g);

}  // namespace spatter::relate

#endif  // SPATTER_RELATE_POINT_LOCATOR_H_
