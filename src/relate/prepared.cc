#include "relate/prepared.h"

#include "common/coverage.h"

namespace spatter::relate {

using geom::Geometry;
using geom::GeomType;

PreparedGeometry::PreparedGeometry(const Geometry& target)
    : target_(target), target_env_(target.GetEnvelope()) {
  // Index the target's segments; point-only targets leave the index empty.
  std::vector<index::RTreeEntry> entries;
  uint64_t next_id = 0;
  geom::ForEachBasic(target, [&](const Geometry& basic) {
    auto add_seq = [&](const std::vector<geom::Coord>& pts) {
      for (size_t i = 0; i + 1 < pts.size(); ++i) {
        geom::Envelope box(pts[i]);
        box.ExpandToInclude(pts[i + 1]);
        entries.push_back({box, next_id++});
      }
    };
    if (basic.type() == GeomType::kLineString) {
      add_seq(geom::AsLineString(basic).points());
    } else if (basic.type() == GeomType::kPolygon) {
      for (const auto& ring : geom::AsPolygon(basic).rings()) add_seq(ring);
    }
  });
  segment_index_.BulkLoad(std::move(entries));
}

bool PreparedGeometry::EnvelopeCandidate(const Geometry& candidate) const {
  const geom::Envelope env = candidate.GetEnvelope();
  if (env.IsNull() || target_env_.IsNull()) return false;
  return target_env_.Intersects(env);
}

bool PreparedGeometry::StaleCacheHit(const Geometry& candidate,
                                     const PredicateContext& ctx) const {
  if (!ctx.faults ||
      !ctx.faults->IsEnabled(faults::FaultId::kGeosPreparedStaleCache)) {
    return false;
  }
  // Injected bug (paper Listing 7): the result cache is invalidated by the
  // previous evaluation, so a candidate structurally identical to the one
  // just evaluated reads a stale negative entry.
  const bool hit = last_result_valid_ && last_candidate_ != nullptr &&
                   last_candidate_->EqualsExact(candidate);
  last_candidate_ = candidate.Clone();
  last_result_valid_ = true;
  if (hit) ctx.faults->Fire(faults::FaultId::kGeosPreparedStaleCache);
  return hit;
}

Result<bool> PreparedGeometry::Intersects(const Geometry& candidate,
                                          const PredicateContext& ctx) const {
  SPATTER_COV("prepared", "intersects");
  if (!candidate.IsEmpty() && !target_.IsEmpty() &&
      !EnvelopeCandidate(candidate)) {
    return false;  // disjoint envelopes cannot intersect.
  }
  exact_evals_++;
  return relate::Intersects(target_, candidate, ctx);
}

Result<bool> PreparedGeometry::Contains(const Geometry& candidate,
                                        const PredicateContext& ctx) const {
  SPATTER_COV("prepared", "contains");
  if (StaleCacheHit(candidate, ctx)) return false;
  if (!candidate.IsEmpty() && !target_.IsEmpty() &&
      !target_env_.Contains(candidate.GetEnvelope())) {
    return false;  // containment requires envelope containment.
  }
  exact_evals_++;
  return relate::Contains(target_, candidate, ctx);
}

Result<bool> PreparedGeometry::Covers(const Geometry& candidate,
                                      const PredicateContext& ctx) const {
  SPATTER_COV("prepared", "covers");
  if (StaleCacheHit(candidate, ctx)) return false;
  if (!candidate.IsEmpty() && !target_.IsEmpty() &&
      !target_env_.Contains(candidate.GetEnvelope())) {
    return false;
  }
  exact_evals_++;
  return relate::Covers(target_, candidate, ctx);
}

}  // namespace spatter::relate
