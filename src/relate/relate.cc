#include "relate/relate.h"

#include <vector>

#include "algo/boundary.h"
#include "algo/noding.h"
#include "algo/ring_ops.h"
#include "common/coverage.h"
#include "geom/predicates.h"
#include "obs/metrics.h"
#include "relate/point_locator.h"

namespace spatter::relate {

using geom::Coord;
using geom::Geometry;
using geom::GeomType;

namespace {

void CollectSegments(const Geometry& g, int src,
                     std::vector<algo::TaggedSegment>* segs) {
  geom::ForEachBasic(g, [&](const Geometry& basic) {
    if (basic.type() == GeomType::kLineString) {
      const auto& pts = geom::AsLineString(basic).points();
      bool emitted = false;
      for (size_t i = 0; i + 1 < pts.size(); ++i) {
        if (pts[i] != pts[i + 1]) {
          segs->push_back({pts[i], pts[i + 1], src});
          emitted = true;
        }
      }
      if (!emitted && !pts.empty()) {
        // Fully degenerate line: its point set is a single point, which
        // must still produce a classification node.
        segs->push_back({pts[0], pts[0], src});
      }
    } else if (basic.type() == GeomType::kPolygon) {
      for (const auto& ring : geom::AsPolygon(basic).rings()) {
        bool emitted = false;
        for (size_t i = 0; i + 1 < ring.size(); ++i) {
          if (ring[i] != ring[i + 1]) {
            segs->push_back({ring[i], ring[i + 1], src});
            emitted = true;
          }
        }
        if (ring.size() >= 2 && ring.front() != ring.back()) {
          segs->push_back({ring.back(), ring.front(), src});
          emitted = true;
        }
        if (!emitted && !ring.empty()) {
          segs->push_back({ring[0], ring[0], src});
        }
      }
    }
  });
}

void CollectPointCoords(const Geometry& g, std::vector<Coord>* pts) {
  geom::ForEachBasic(g, [&](const Geometry& basic) {
    if (basic.type() == GeomType::kPoint && !basic.IsEmpty()) {
      pts->push_back(*geom::AsPoint(basic).coord());
    }
  });
}

std::vector<const geom::Polygon*> CollectPolygons(const Geometry& g) {
  std::vector<const geom::Polygon*> polys;
  geom::ForEachBasic(g, [&](const Geometry& basic) {
    if (basic.type() == GeomType::kPolygon && !basic.IsEmpty()) {
      polys.push_back(&geom::AsPolygon(basic));
    }
  });
  return polys;
}

// Dimension of the boundary of g (for the empty-vs-nonempty entries).
int BoundaryDim(const Geometry& g) {
  return algo::Boundary(g)->Dimension();
}

// Dimension of the actual point set: a fully degenerate (zero-length) line
// is a 0-dimensional set even though its declared type is 1-dimensional.
// Used for the empty-versus-nonempty matrix entries so they agree with
// the canonical representation of the same point set.
// True when some element of g (at any nesting depth) is EMPTY. Empty line
// elements perturb the point locator's mod-2 boundary accumulator under
// kGeosBoundaryEmptyElementDrop, so such inputs must take the full path.
bool HasEmptyElementRec(const Geometry& g) {
  if (!g.IsCollection()) return false;
  const auto& coll = geom::AsCollection(g);
  for (size_t i = 0; i < coll.NumElements(); ++i) {
    if (coll.ElementAt(i).IsEmpty() || HasEmptyElementRec(coll.ElementAt(i))) {
      return true;
    }
  }
  return false;
}

// Envelope pre-filter eligibility: the closed-form disjoint matrix is exact
// only when no enabled fault could alter a geometry's *self*-classification.
// Top-level GEOMETRYCOLLECTIONs (kGeosGcBoundaryLastOneWins) and EMPTY
// elements (kGeosBoundaryEmptyElementDrop) route through the full witness
// path; everything else classifies itself identically either way.
bool EnvelopeFastPathSafe(const Geometry& g, const faults::FaultState* faults) {
  if (!faults) return true;
  if (g.type() == GeomType::kGeometryCollection) return false;
  return !HasEmptyElementRec(g);
}

// Strict separation with an eps margin: point location and noding both snap
// within opts.eps, so envelopes must be farther apart than any tolerance
// effect before the pre-filter may conclude "no interaction".
bool EnvelopesSeparated(const geom::Envelope& ea, const geom::Envelope& eb,
                        double eps) {
  const double margin = eps * 16.0;
  return ea.min_x() > eb.max_x() + margin || eb.min_x() > ea.max_x() + margin ||
         ea.min_y() > eb.max_y() + margin || eb.min_y() > ea.max_y() + margin;
}

int PointSetDimension(const Geometry& g) {
  int dim = -1;
  geom::ForEachBasic(g, [&dim](const Geometry& basic) {
    switch (basic.type()) {
      case GeomType::kPoint:
        if (!basic.IsEmpty()) dim = std::max(dim, 0);
        break;
      case GeomType::kLineString: {
        const auto& pts = geom::AsLineString(basic).points();
        if (pts.empty()) break;
        bool has_length = false;
        for (size_t i = 0; i + 1 < pts.size(); ++i) {
          if (pts[i] != pts[i + 1]) has_length = true;
        }
        dim = std::max(dim, has_length ? 1 : 0);
        break;
      }
      case GeomType::kPolygon:
        if (!basic.IsEmpty()) dim = std::max(dim, 2);
        break;
      default:
        break;
    }
  });
  return dim;
}

}  // namespace

int NestingDepth(const Geometry& g) {
  if (!g.IsCollection()) return 0;
  const auto& coll = geom::AsCollection(g);
  int depth = 0;
  for (size_t i = 0; i < coll.NumElements(); ++i) {
    depth = std::max(depth, NestingDepth(coll.ElementAt(i)));
  }
  return depth + 1;
}

int EffectiveDimension(const Geometry& g, const faults::FaultState* faults) {
  if (faults && g.type() == GeomType::kGeometryCollection) {
    const auto& coll = geom::AsCollection(g);
    if (coll.NumElements() > 0 &&
        faults->Fire(faults::FaultId::kGeosMixedDimensionFirstElement)) {
      return coll.ElementAt(0).Dimension();
    }
  }
  return g.Dimension();
}

Result<IntersectionMatrix> Relate(const Geometry& a, const Geometry& b,
                                  const RelateOptions& opts) {
  const auto* faults = opts.faults;
  if (faults && (NestingDepth(a) >= 3 || NestingDepth(b) >= 3) &&
      faults->Fire(faults::FaultId::kGeosCrashRelateNestedGc)) {
    return Status::Crash(
        "simulated GEOS crash: relate on deeply nested collections");
  }

  IntersectionMatrix im;
  const bool a_empty = a.IsEmpty();
  const bool b_empty = b.IsEmpty();
  im.Set(Location::kExterior, Location::kExterior, 2);

  if (a_empty && b_empty) {
    SPATTER_COV("relate", "both_empty");
    return im;
  }
  if (a_empty) {
    SPATTER_COV("relate", "a_empty");
    im.Set(Location::kExterior, Location::kInterior, PointSetDimension(b));
    im.Set(Location::kExterior, Location::kBoundary, BoundaryDim(b));
    return im;
  }
  if (b_empty) {
    SPATTER_COV("relate", "b_empty");
    im.Set(Location::kInterior, Location::kExterior, PointSetDimension(a));
    im.Set(Location::kBoundary, Location::kExterior, BoundaryDim(a));
    return im;
  }

  // Envelope pre-filter (join-executor hot path): separated envelopes admit
  // a closed-form DE-9IM matrix — every intersection entry is F and the
  // exterior column depends only on each geometry's own point set, exactly
  // as the empty-operand branches above compute it. Skipping the noding +
  // point-location work below is the dominant saving for the join
  // executor's all-pairs predicate evaluation over spread-out tables.
  if (EnvelopesSeparated(a.GetEnvelope(), b.GetEnvelope(), opts.eps) &&
      EnvelopeFastPathSafe(a, faults) && EnvelopeFastPathSafe(b, faults)) {
    SPATTER_COV("relate", "envelope_disjoint");
    SPATTER_METRIC_INC("relate.envelope_prefilter");
    im.Set(Location::kInterior, Location::kExterior, PointSetDimension(a));
    im.Set(Location::kBoundary, Location::kExterior, BoundaryDim(a));
    im.Set(Location::kExterior, Location::kInterior, PointSetDimension(b));
    im.Set(Location::kExterior, Location::kBoundary, BoundaryDim(b));
    return im;
  }

  // 1. Node the combined linework. Isolated point elements join as
  // degenerate segments so edges split at them too — otherwise an edge
  // midpoint could coincide with a point element and misattribute the
  // whole edge to that 0-dimensional intersection.
  std::vector<algo::TaggedSegment> segs;
  CollectSegments(a, 0, &segs);
  CollectSegments(b, 1, &segs);
  {
    std::vector<Coord> pt_elems;
    CollectPointCoords(a, &pt_elems);
    CollectPointCoords(b, &pt_elems);
    for (const Coord& p : pt_elems) segs.push_back({p, p, 2});
  }
  SPATTER_METRIC_INC("relate.full");
  const algo::NodingResult noded = algo::NodeSegments(segs, opts.eps);

  // 2. Classification points: all nodes plus isolated point elements.
  std::vector<Coord> nodes = noded.nodes;
  CollectPointCoords(a, &nodes);
  CollectPointCoords(b, &nodes);

  for (const Coord& node : nodes) {
    const Location la = LocatePoint(node, a, opts.eps, faults);
    const Location lb = LocatePoint(node, b, opts.eps, faults);
    im.SetAtLeast(la, lb, 0);
  }

  // 3. Split-edge midpoints contribute dimension 1. Because edges are
  // noded against both geometries, an open edge lies in a single location
  // class of each geometry, and its midpoint witnesses that class.
  const bool a_areal = HasArealComponent(a);
  const bool b_areal = HasArealComponent(b);
  bool areal_ii2 = false;
  bool areal_ie2 = false;
  bool areal_ei2 = false;
  for (const auto& edge : noded.edges) {
    const Coord mid = geom::Midpoint(edge.a, edge.b);
    const Location la = LocatePoint(mid, a, opts.eps, faults);
    const Location lb = LocatePoint(mid, b, opts.eps, faults);
    im.SetAtLeast(la, lb, 1);
    if (a_areal && b_areal) {
      // Dimension-2 witnesses from areal piece classification: an edge on
      // one geometry's areal boundary with its midpoint in the other's
      // areal interior has 2-dimensional interior overlap on one side.
      const Location aa = LocateAreal(mid, a, opts.eps);
      const Location ab = LocateAreal(mid, b, opts.eps);
      // An edge on one geometry's areal boundary separates that geometry's
      // interior from its exterior locally; the other geometry's interior
      // covers both sides when the midpoint is areal-interior to it.
      if (aa == Location::kBoundary && ab == Location::kInterior) {
        areal_ii2 = true;  // inner side of dA inside I(B)
        areal_ei2 = true;  // outer side of dA inside I(B)
      }
      if (aa == Location::kInterior && ab == Location::kBoundary) {
        areal_ii2 = true;
        areal_ie2 = true;
      }
      if (aa == Location::kInterior && ab == Location::kInterior) {
        areal_ii2 = true;
      }
      if ((aa == Location::kBoundary || aa == Location::kInterior) &&
          ab == Location::kExterior) {
        areal_ie2 = true;
      }
      if (aa == Location::kExterior &&
          (ab == Location::kBoundary || ab == Location::kInterior)) {
        areal_ei2 = true;
      }
    }
  }

  // 4. Areal dimension-2 entries.
  if (a_areal && !b_areal) {
    SPATTER_COV("relate", "areal_vs_nonareal");
    // A's interior minus a measure-zero set still has dimension 2 in B's
    // exterior.
    im.SetAtLeast(Location::kInterior, Location::kExterior, 2);
  }
  if (b_areal && !a_areal) {
    im.SetAtLeast(Location::kExterior, Location::kInterior, 2);
  }
  if (a_areal && b_areal) {
    SPATTER_COV("relate", "areal_vs_areal");
    // Interior-point witnesses handle containment/equality, where no edge
    // piece lies strictly inside the other geometry.
    for (const auto* poly : CollectPolygons(a)) {
      if (auto ip = algo::InteriorPointOfPolygon(*poly)) {
        const Location lb = LocateAreal(*ip, b, opts.eps);
        if (lb == Location::kInterior) areal_ii2 = true;
        if (lb == Location::kExterior) areal_ie2 = true;
      }
    }
    for (const auto* poly : CollectPolygons(b)) {
      if (auto ip = algo::InteriorPointOfPolygon(*poly)) {
        const Location la = LocateAreal(*ip, a, opts.eps);
        if (la == Location::kInterior) areal_ii2 = true;
        if (la == Location::kExterior) areal_ei2 = true;
      }
    }
    if (areal_ii2) {
      im.SetAtLeast(Location::kInterior, Location::kInterior, 2);
    }
    if (areal_ie2) {
      im.SetAtLeast(Location::kInterior, Location::kExterior, 2);
    }
    if (areal_ei2) {
      im.SetAtLeast(Location::kExterior, Location::kInterior, 2);
    }
  }

  return im;
}

}  // namespace spatter::relate
