#include "relate/point_locator.h"

#include <cmath>

#include "algo/ring_ops.h"
#include "common/coverage.h"
#include "geom/predicates.h"

namespace spatter::relate {

using geom::Coord;
using geom::Geometry;
using geom::GeomType;

namespace {

bool CoordsEqual(const Coord& a, const Coord& b, double eps) {
  return std::fabs(a.x - b.x) <= eps && std::fabs(a.y - b.y) <= eps;
}

struct Scan {
  bool areal_interior = false;
  bool areal_boundary = false;
  bool point_interior = false;
  int endpoint_count = 0;
  bool on_line = false;
  bool has_empty_line_element = false;
};

void ScanBasic(const Coord& p, const Geometry& basic, double eps, Scan* scan) {
  switch (basic.type()) {
    case GeomType::kPoint: {
      if (!basic.IsEmpty() &&
          CoordsEqual(*geom::AsPoint(basic).coord(), p, eps)) {
        scan->point_interior = true;
      }
      break;
    }
    case GeomType::kLineString: {
      const auto& line = geom::AsLineString(basic);
      if (line.IsEmpty()) {
        scan->has_empty_line_element = true;
        break;
      }
      if (!line.IsClosed() && line.NumPoints() >= 2) {
        if (CoordsEqual(line.points().front(), p, eps)) {
          scan->endpoint_count++;
        }
        if (CoordsEqual(line.points().back(), p, eps)) {
          scan->endpoint_count++;
        }
      }
      for (size_t i = 0; i + 1 < line.NumPoints(); ++i) {
        if (geom::OnSegment(p, line.PointAt(i), line.PointAt(i + 1), eps)) {
          scan->on_line = true;
          break;
        }
      }
      break;
    }
    case GeomType::kPolygon: {
      const auto loc =
          algo::LocateInPolygon(p, geom::AsPolygon(basic), eps);
      if (loc == algo::RingLocation::kInterior) scan->areal_interior = true;
      if (loc == algo::RingLocation::kBoundary) scan->areal_boundary = true;
      break;
    }
    default:
      break;
  }
}

Location Resolve(const Scan& scan, const faults::FaultState* faults) {
  if (scan.areal_interior) {
    SPATTER_COV("locate", "areal_interior");
    return Location::kInterior;
  }
  if (scan.areal_boundary) {
    SPATTER_COV("locate", "areal_boundary");
    return Location::kBoundary;
  }
  if (scan.point_interior) {
    SPATTER_COV("locate", "point_element_interior");
    return Location::kInterior;
  }
  bool parity_applies = true;
  if (scan.has_empty_line_element && faults &&
      faults->Fire(faults::FaultId::kGeosBoundaryEmptyElementDrop)) {
    // Injected bug: an EMPTY line element resets the mod-2 accumulator, so
    // every endpoint is treated as interior.
    parity_applies = false;
  }
  if (parity_applies && scan.endpoint_count % 2 == 1) {
    SPATTER_COV("locate", "mod2_boundary");
    return Location::kBoundary;
  }
  if (scan.on_line || scan.endpoint_count > 0) {
    SPATTER_COV("locate", "line_interior");
    return Location::kInterior;
  }
  SPATTER_COV("locate", "exterior");
  return Location::kExterior;
}

}  // namespace

Location LocatePoint(const Coord& p, const Geometry& g, double eps,
                     const faults::FaultState* faults) {
  if (g.type() == GeomType::kGeometryCollection && faults &&
      faults->IsEnabled(faults::FaultId::kGeosGcBoundaryLastOneWins)) {
    // Injected bug (paper Listing 6): resolve each element independently
    // and let the last non-exterior element win, instead of combining with
    // interior priority.
    const auto& coll = geom::AsCollection(g);
    Location result = Location::kExterior;
    for (size_t i = 0; i < coll.NumElements(); ++i) {
      const Location loc = LocatePoint(p, coll.ElementAt(i), eps, nullptr);
      if (loc != Location::kExterior) {
        faults->Fire(faults::FaultId::kGeosGcBoundaryLastOneWins);
        result = loc;
      }
    }
    return result;
  }

  Scan scan;
  geom::ForEachBasic(g, [&](const Geometry& basic) {
    ScanBasic(p, basic, eps, &scan);
  });
  return Resolve(scan, faults);
}

Location LocateAreal(const Coord& p, const Geometry& g, double eps) {
  bool boundary = false;
  bool interior = false;
  geom::ForEachBasic(g, [&](const Geometry& basic) {
    if (basic.type() != GeomType::kPolygon || basic.IsEmpty()) return;
    const auto loc = algo::LocateInPolygon(p, geom::AsPolygon(basic), eps);
    if (loc == algo::RingLocation::kInterior) interior = true;
    if (loc == algo::RingLocation::kBoundary) boundary = true;
  });
  if (interior) return Location::kInterior;
  if (boundary) return Location::kBoundary;
  return Location::kExterior;
}

bool HasArealComponent(const Geometry& g) {
  bool has = false;
  geom::ForEachBasic(g, [&has](const Geometry& basic) {
    if (basic.type() == GeomType::kPolygon && !basic.IsEmpty()) has = true;
  });
  return has;
}

}  // namespace spatter::relate
