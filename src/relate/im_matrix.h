// DE-9IM intersection matrix (paper §2.2, Definition 2.3).
#ifndef SPATTER_RELATE_IM_MATRIX_H_
#define SPATTER_RELATE_IM_MATRIX_H_

#include <string>

#include "common/status.h"

namespace spatter::relate {

/// Location classes of DE-9IM, indexing the matrix rows/columns.
enum class Location { kInterior = 0, kBoundary = 1, kExterior = 2 };

const char* LocationName(Location loc);

/// The 3x3 dimension matrix. Entries hold the dimension of the pairwise
/// intersection: -1 encodes F (empty), otherwise 0, 1, or 2.
class IntersectionMatrix {
 public:
  static constexpr int kFalse = -1;

  /// All entries F.
  IntersectionMatrix();
  /// Parses a 9-character code like "FF21F1102" (digits, F; T is not a
  /// code character and is rejected here — it only appears in patterns).
  static Result<IntersectionMatrix> FromCode(const std::string& code);

  int At(Location a, Location b) const {
    return dims_[static_cast<int>(a)][static_cast<int>(b)];
  }
  void Set(Location a, Location b, int dim) {
    dims_[static_cast<int>(a)][static_cast<int>(b)] = dim;
  }
  /// Raises the entry to `dim` if larger (dimension lattice F<0<1<2).
  void SetAtLeast(Location a, Location b, int dim) {
    int& cell = dims_[static_cast<int>(a)][static_cast<int>(b)];
    if (dim > cell) cell = dim;
  }

  /// 9-character DE-9IM code ("FF21F1102").
  std::string Code() const;

  /// Matches a 9-character pattern over {T, F, 0, 1, 2, *}:
  /// T = any non-empty (dim >= 0), F = empty, digit = exact dimension,
  /// * = anything. Invalid pattern characters never match.
  bool Matches(const std::string& pattern) const;

  /// Transposed matrix: R(g2, g1) from R(g1, g2).
  IntersectionMatrix Transposed() const;

  bool operator==(const IntersectionMatrix& o) const;

 private:
  int dims_[3][3];
};

}  // namespace spatter::relate

#endif  // SPATTER_RELATE_IM_MATRIX_H_
