// Prepared geometry: caches an R-tree over the target geometry's segments
// plus precomputed component lists to accelerate repeated predicate
// evaluation against many candidates (the optimization component in which
// the paper found the Listing 7 bug).
//
// Contract: every prepared predicate must return exactly what the plain
// predicate returns ("every prepared variant should return the same as the
// non-prepared variant" — GEOS developer, paper §5.2). Property tests
// enforce this; the kGeosPreparedStaleCache fault deliberately violates it.
#ifndef SPATTER_RELATE_PREPARED_H_
#define SPATTER_RELATE_PREPARED_H_

#include <memory>

#include "common/status.h"
#include "faults/fault.h"
#include "geom/geometry.h"
#include "index/rtree.h"
#include "relate/named_predicates.h"

namespace spatter::relate {

class PreparedGeometry {
 public:
  /// Keeps a reference to `target`; the caller owns it and must keep it
  /// alive for the lifetime of the prepared wrapper.
  explicit PreparedGeometry(const geom::Geometry& target);

  const geom::Geometry& target() const { return target_; }

  /// Fast envelope-based rejection; exact fallback through RelateMatrix.
  Result<bool> Intersects(const geom::Geometry& candidate,
                          const PredicateContext& ctx = {}) const;
  Result<bool> Contains(const geom::Geometry& candidate,
                        const PredicateContext& ctx = {}) const;
  Result<bool> Covers(const geom::Geometry& candidate,
                      const PredicateContext& ctx = {}) const;

  /// Number of exact (non-shortcut) evaluations, for benches.
  size_t exact_evaluations() const { return exact_evals_; }

 private:
  /// True if the candidate's envelope survives the index pre-filter.
  bool EnvelopeCandidate(const geom::Geometry& candidate) const;
  /// Stale-cache fault emulation: remembers the previous candidate.
  bool StaleCacheHit(const geom::Geometry& candidate,
                     const PredicateContext& ctx) const;

  const geom::Geometry& target_;
  geom::Envelope target_env_;
  index::RTree segment_index_;
  mutable size_t exact_evals_ = 0;
  mutable geom::GeomPtr last_candidate_;
  mutable bool last_result_valid_ = false;
};

}  // namespace spatter::relate

#endif  // SPATTER_RELATE_PREPARED_H_
