// Crash-consistent file persistence, shared by every subsystem that
// writes state another run will read back (corpus entries, Figure-8 curve
// JSON, fleet checkpoints, crash reproducers).
//
// The invariant AtomicWriteFile provides: a reader opening `path` sees
// either the complete previous contents or the complete new contents,
// never a torn mix — a process killed mid-persist (OOM, SIGKILL,
// preemption) leaves at most an orphaned temp file behind. That is the
// foundation the checkpoint/resume contract stands on: `--resume` must be
// able to trust whatever checkpoint file it finds.
#ifndef SPATTER_COMMON_FSIO_H_
#define SPATTER_COMMON_FSIO_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace spatter {

/// Writes `size` bytes to `path` atomically: the bytes land in a
/// same-directory temp file (`<path>.tmp.<pid>` — same filesystem, so the
/// final rename(2) is atomic) which is then renamed over `path`. On any
/// failure the temp file is removed and `path` is untouched.
Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size);
Status AtomicWriteFile(const std::string& path, const std::string& text);

/// Test-only fault injection: when armed, the NEXT AtomicWriteFile call
/// writes its temp file completely and then _exit(3)s the process before
/// the rename — the observable state of a writer killed mid-persist.
/// Regression tests fork a child, arm this, and assert the parent still
/// reads the previous contents. Never set outside tests.
void ArmAtomicWriteKillForTest();

}  // namespace spatter

#endif  // SPATTER_COMMON_FSIO_H_
