// Small string helpers shared across modules.
#ifndef SPATTER_COMMON_STRINGS_H_
#define SPATTER_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace spatter {

/// Formats a double the way WKT expects: shortest round-trip form, no
/// trailing zeros, "-0" normalized to "0".
std::string FormatCoord(double v);

/// ASCII upper-casing (locale independent).
std::string ToUpperAscii(std::string s);

/// True if `s` equals `expect` ignoring ASCII case.
bool EqualsIgnoreCase(const std::string& s, const std::string& expect);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

}  // namespace spatter

#endif  // SPATTER_COMMON_STRINGS_H_
