// Deterministic pseudo-random number generator used by every stochastic
// component (generator, affine construction, query templates, campaigns).
// Determinism matters: campaigns, benches, and the ablation study must be
// reproducible from a seed.
#ifndef SPATTER_COMMON_RNG_H_
#define SPATTER_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace spatter {

/// xoshiro256** seeded via splitmix64. Small, fast, and good enough for
/// fuzzing workloads; not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  /// Re-seeds the full state from a single 64-bit seed.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) s = SplitMix64(&x);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  ///
  /// Lemire's nearly-divisionless bounded rejection (arXiv:1805.10941):
  /// multiply-shift maps Next() into [0, bound) without modulo bias, and
  /// the expensive `% bound` runs only on the rare rejection path.
  uint64_t Below(uint64_t bound) {
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      const uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t IntIn(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Fair coin.
  bool Bool() { return (Next() & 1) != 0; }

  /// Bernoulli(p) with p expressed in percent [0,100].
  bool Percent(int p) { return static_cast<int>(Below(100)) < p; }

  /// Uniform double in [0,1).
  double Double01() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform element of a non-empty vector.
  template <typename T>
  const T& Choice(const std::vector<T>& items) {
    return items[Below(items.size())];
  }

  /// Deterministically derives the seed of stream `index` from a master
  /// seed by finalizing one splitmix64 step at the indexed position.
  /// Adjacent indices land in unrelated regions of seed space, so shards
  /// (or per-iteration reseeds) draw independent-looking sequences while
  /// the whole universe stays a pure function of (master, index).
  static uint64_t SplitSeed(uint64_t master, uint64_t index) {
    uint64_t x = master + (index + 1) * 0x9e3779b97f4a7c15ULL;
    return SplitMix64(&x);
  }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static uint64_t Rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace spatter

#endif  // SPATTER_COMMON_RNG_H_
