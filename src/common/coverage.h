// Lightweight coverage instrumentation.
//
// The paper (Table 5, Figure 8b/c) measures gcov line coverage of PostGIS
// and GEOS. We cannot gcov systems we do not run, so the engine and the
// geometry library register named coverage points at interesting code sites
// (branches of the relate computer, dialect paths, edit functions, ...).
// Coverage percentage = hit points / registered points, per module. The
// signal is monotone in exercised behaviour, which is all the experiments
// need (they compare generators and test corpora, not absolute gcov values).
//
// Thread safety: the sharded campaign runtime hits coverage points from
// every worker thread at once, so the registry is fully thread-safe. Hit()
// is a single relaxed atomic increment on a fixed-capacity counter array
// (stable addresses, no lock); registration and all read/reset/snapshot
// operations serialize on an internal mutex.
#ifndef SPATTER_COMMON_COVERAGE_H_
#define SPATTER_COMMON_COVERAGE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace spatter {

/// Global registry of coverage points.
class CoverageRegistry {
 public:
  /// Upper bound on distinct coverage sites. Sites are static code
  /// locations, so the count is small and fixed at compile time; the
  /// bound keeps Hit() lock-free (the counter array never reallocates).
  static constexpr size_t kMaxPoints = 8192;

  static CoverageRegistry& Instance();

  /// Registers a point (idempotent) and returns its index.
  size_t Register(const std::string& module, const std::string& point);

  /// Marks a point hit. Lock-free; safe from any thread. When the calling
  /// thread has an active trace (BeginTrace), the index is also appended to
  /// that thread's trace — hits from other threads never leak in, which is
  /// what keeps per-shard corpus admission deterministic under concurrency.
  void Hit(size_t index) {
    if (hits_[index].fetch_add(1, std::memory_order_relaxed) == 0) {
      covered_count_.fetch_add(1, std::memory_order_relaxed);
    }
    if (trace_sink_ != nullptr) TraceHit(static_cast<uint32_t>(index));
  }

  /// Sites hit at least once since the last reset — one relaxed atomic
  /// load, cheap enough to poll every iteration. Greybox callers compare
  /// it against an earlier reading ("snapshot") to learn whether ANY new
  /// site was covered before paying for a full SnapshotHits() diff.
  size_t CoveredSiteCount() const {
    return covered_count_.load(std::memory_order_relaxed);
  }

  /// Indices whose hit count grew relative to `snapshot` (from
  /// SnapshotHits); indices registered after the snapshot count as new.
  std::vector<uint32_t> NewSitesSince(const std::vector<uint64_t>& snapshot)
      const;

  /// Stable keys (see KeysOf) of the sites NewSitesSince would report,
  /// composed under one lock. The fleet worker polls this between
  /// iterations to ship coverage deltas: keys, not indices, because
  /// registration order differs between worker processes.
  std::vector<uint64_t> KeysCoveredSince(
      const std::vector<uint64_t>& snapshot) const;

  // --- Per-thread coverage trace -------------------------------------------
  // The corpus feedback loop needs "which sites did THIS iteration hit",
  // attributable to the executing thread alone. A thread-local sink makes
  // that exact and deterministic per shard regardless of what other shards
  // hit concurrently (a global snapshot diff would be contaminated).

  /// Starts (or restarts) the calling thread's trace.
  static void BeginTrace();
  /// Ends the trace and returns the sorted, deduplicated site indices the
  /// calling thread hit since BeginTrace().
  static std::vector<uint32_t> TakeTrace();
  /// Records `index` in the active trace, once per site per trace (an
  /// epoch mark per site keeps the trace O(unique sites), not O(hits) —
  /// one iteration produces ~10^5 hits over a few hundred sites).
  static void TraceHit(uint32_t index);

  /// Stable 64-bit keys (FNV-1a of "module/point") for site indices. Raw
  /// indices are registration order, which varies across processes; keys
  /// are what the corpus persists and dedups on. Sites whose module is in
  /// `exclude_modules` are skipped — the corpus admission path drops
  /// fuzzer-internal modules (campaign, corpus, generator, oracles) so an
  /// entry is admitted for new ENGINE behaviour, not because it was the
  /// first input to exercise a piece of harness instrumentation.
  std::vector<uint64_t> KeysOf(
      const std::vector<uint32_t>& indices,
      const std::set<std::string>& exclude_modules = {}) const;

  /// Clears hit counters (registrations persist).
  void ResetHits();

  /// Number of registered points in a module ("" = all).
  size_t TotalPoints(const std::string& module = "") const;
  /// Number of registered points hit at least once in a module ("" = all).
  size_t HitPoints(const std::string& module = "") const;
  /// HitPoints / TotalPoints in percent; 0 if no points registered.
  double Percent(const std::string& module = "") const;

  /// Per-module (module, hit, total) summary rows.
  struct ModuleSummary {
    std::string module;
    size_t hit = 0;
    size_t total = 0;
  };
  std::vector<ModuleSummary> Summaries() const;

  /// Snapshot of hit counters, restorable; used to combine "unit tests"
  /// and "unit tests + Spatter" configurations in the Table 5 bench.
  std::vector<uint64_t> SnapshotHits() const;
  void RestoreHits(const std::vector<uint64_t>& hits);

 private:
  CoverageRegistry() = default;
  struct Point {
    std::string module;
    std::string name;
    /// FNV-1a of "module/point", computed once at registration so KeysOf
    /// is a plain indexed load under the lock.
    uint64_t key = 0;
  };

  mutable std::mutex mu_;  // guards points_ and index_
  std::vector<Point> points_;
  std::map<std::string, size_t> index_;  // "module/point" -> index
  /// Fixed-capacity so concurrent Hit() never races a reallocation.
  std::atomic<uint64_t> hits_[kMaxPoints] = {};
  /// Sites with a non-zero hit count (maintained by Hit/Reset/Restore).
  std::atomic<size_t> covered_count_{0};
  /// Calling thread's active trace; null when tracing is off.
  static inline thread_local std::vector<uint32_t>* trace_sink_ = nullptr;
};

namespace internal {
/// Registers once (function-local static) and bumps the hit counter.
struct CovSite {
  size_t index;
  CovSite(const char* module, const char* point)
      : index(CoverageRegistry::Instance().Register(module, point)) {}
};
}  // namespace internal

/// Drops a named coverage point at the current code site.
/// Usage: SPATTER_COV("relate", "line_line_proper_crossing");
#define SPATTER_COV(module, point)                                      \
  do {                                                                  \
    static ::spatter::internal::CovSite _cov_site(module, point);       \
    ::spatter::CoverageRegistry::Instance().Hit(_cov_site.index);       \
  } while (0)

}  // namespace spatter

#endif  // SPATTER_COMMON_COVERAGE_H_
