// Lightweight coverage instrumentation.
//
// The paper (Table 5, Figure 8b/c) measures gcov line coverage of PostGIS
// and GEOS. We cannot gcov systems we do not run, so the engine and the
// geometry library register named coverage points at interesting code sites
// (branches of the relate computer, dialect paths, edit functions, ...).
// Coverage percentage = hit points / registered points, per module. The
// signal is monotone in exercised behaviour, which is all the experiments
// need (they compare generators and test corpora, not absolute gcov values).
//
// Thread safety: the sharded campaign runtime hits coverage points from
// every worker thread at once, so the registry is fully thread-safe. Hit()
// is a single relaxed atomic increment on a fixed-capacity counter array
// (stable addresses, no lock); registration and all read/reset/snapshot
// operations serialize on an internal mutex.
#ifndef SPATTER_COMMON_COVERAGE_H_
#define SPATTER_COMMON_COVERAGE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace spatter {

/// Global registry of coverage points.
class CoverageRegistry {
 public:
  /// Upper bound on distinct coverage sites. Sites are static code
  /// locations, so the count is small and fixed at compile time; the
  /// bound keeps Hit() lock-free (the counter array never reallocates).
  static constexpr size_t kMaxPoints = 8192;

  static CoverageRegistry& Instance();

  /// Registers a point (idempotent) and returns its index.
  size_t Register(const std::string& module, const std::string& point);

  /// Marks a point hit. Lock-free; safe from any thread.
  void Hit(size_t index) {
    hits_[index].fetch_add(1, std::memory_order_relaxed);
  }

  /// Clears hit counters (registrations persist).
  void ResetHits();

  /// Number of registered points in a module ("" = all).
  size_t TotalPoints(const std::string& module = "") const;
  /// Number of registered points hit at least once in a module ("" = all).
  size_t HitPoints(const std::string& module = "") const;
  /// HitPoints / TotalPoints in percent; 0 if no points registered.
  double Percent(const std::string& module = "") const;

  /// Per-module (module, hit, total) summary rows.
  struct ModuleSummary {
    std::string module;
    size_t hit = 0;
    size_t total = 0;
  };
  std::vector<ModuleSummary> Summaries() const;

  /// Snapshot of hit counters, restorable; used to combine "unit tests"
  /// and "unit tests + Spatter" configurations in the Table 5 bench.
  std::vector<uint64_t> SnapshotHits() const;
  void RestoreHits(const std::vector<uint64_t>& hits);

 private:
  CoverageRegistry() = default;
  struct Point {
    std::string module;
    std::string name;
  };

  mutable std::mutex mu_;  // guards points_ and index_
  std::vector<Point> points_;
  std::map<std::string, size_t> index_;  // "module/point" -> index
  /// Fixed-capacity so concurrent Hit() never races a reallocation.
  std::atomic<uint64_t> hits_[kMaxPoints] = {};
};

namespace internal {
/// Registers once (function-local static) and bumps the hit counter.
struct CovSite {
  size_t index;
  CovSite(const char* module, const char* point)
      : index(CoverageRegistry::Instance().Register(module, point)) {}
};
}  // namespace internal

/// Drops a named coverage point at the current code site.
/// Usage: SPATTER_COV("relate", "line_line_proper_crossing");
#define SPATTER_COV(module, point)                                      \
  do {                                                                  \
    static ::spatter::internal::CovSite _cov_site(module, point);       \
    ::spatter::CoverageRegistry::Instance().Hit(_cov_site.index);       \
  } while (0)

}  // namespace spatter

#endif  // SPATTER_COMMON_COVERAGE_H_
