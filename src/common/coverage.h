// Lightweight coverage instrumentation.
//
// The paper (Table 5, Figure 8b/c) measures gcov line coverage of PostGIS
// and GEOS. We cannot gcov systems we do not run, so the engine and the
// geometry library register named coverage points at interesting code sites
// (branches of the relate computer, dialect paths, edit functions, ...).
// Coverage percentage = hit points / registered points, per module. The
// signal is monotone in exercised behaviour, which is all the experiments
// need (they compare generators and test corpora, not absolute gcov values).
#ifndef SPATTER_COMMON_COVERAGE_H_
#define SPATTER_COMMON_COVERAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spatter {

/// Global registry of coverage points. Not thread-safe by design: the
/// campaign is single-threaded, matching the paper's per-run setup.
class CoverageRegistry {
 public:
  static CoverageRegistry& Instance();

  /// Registers a point (idempotent) and returns its index.
  size_t Register(const std::string& module, const std::string& point);

  /// Marks a point hit.
  void Hit(size_t index) { hits_[index]++; }

  /// Clears hit counters (registrations persist).
  void ResetHits();

  /// Number of registered points in a module ("" = all).
  size_t TotalPoints(const std::string& module = "") const;
  /// Number of registered points hit at least once in a module ("" = all).
  size_t HitPoints(const std::string& module = "") const;
  /// HitPoints / TotalPoints in percent; 0 if no points registered.
  double Percent(const std::string& module = "") const;

  /// Per-module (module, hit, total) summary rows.
  struct ModuleSummary {
    std::string module;
    size_t hit = 0;
    size_t total = 0;
  };
  std::vector<ModuleSummary> Summaries() const;

  /// Snapshot of hit counters, restorable; used to combine "unit tests"
  /// and "unit tests + Spatter" configurations in the Table 5 bench.
  std::vector<uint64_t> SnapshotHits() const { return hits_; }
  void RestoreHits(const std::vector<uint64_t>& hits);

 private:
  CoverageRegistry() = default;
  struct Point {
    std::string module;
    std::string name;
  };
  std::vector<Point> points_;
  std::vector<uint64_t> hits_;
  std::map<std::string, size_t> index_;  // "module/point" -> index
};

namespace internal {
/// Registers once (function-local static) and bumps the hit counter.
struct CovSite {
  size_t index;
  CovSite(const char* module, const char* point)
      : index(CoverageRegistry::Instance().Register(module, point)) {}
};
}  // namespace internal

/// Drops a named coverage point at the current code site.
/// Usage: SPATTER_COV("relate", "line_line_proper_crossing");
#define SPATTER_COV(module, point)                                      \
  do {                                                                  \
    static ::spatter::internal::CovSite _cov_site(module, point);       \
    ::spatter::CoverageRegistry::Instance().Hit(_cov_site.index);       \
  } while (0)

}  // namespace spatter

#endif  // SPATTER_COMMON_COVERAGE_H_
