#include "common/status.h"

namespace spatter {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kInvalidGeometry:
      return "InvalidGeometry";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCrash:
      return "Crash";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace spatter
