#include "common/coverage.h"

namespace spatter {

CoverageRegistry& CoverageRegistry::Instance() {
  static CoverageRegistry registry;
  return registry;
}

size_t CoverageRegistry::Register(const std::string& module,
                                  const std::string& point) {
  const std::string key = module + "/" + point;
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const size_t idx = points_.size();
  points_.push_back(Point{module, point});
  hits_.push_back(0);
  index_.emplace(key, idx);
  return idx;
}

void CoverageRegistry::ResetHits() {
  for (auto& h : hits_) h = 0;
}

size_t CoverageRegistry::TotalPoints(const std::string& module) const {
  if (module.empty()) return points_.size();
  size_t n = 0;
  for (const auto& p : points_) {
    if (p.module == module) n++;
  }
  return n;
}

size_t CoverageRegistry::HitPoints(const std::string& module) const {
  size_t n = 0;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (hits_[i] == 0) continue;
    if (module.empty() || points_[i].module == module) n++;
  }
  return n;
}

double CoverageRegistry::Percent(const std::string& module) const {
  const size_t total = TotalPoints(module);
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(HitPoints(module)) /
         static_cast<double>(total);
}

std::vector<CoverageRegistry::ModuleSummary> CoverageRegistry::Summaries()
    const {
  std::map<std::string, ModuleSummary> by_module;
  for (size_t i = 0; i < points_.size(); ++i) {
    auto& s = by_module[points_[i].module];
    s.module = points_[i].module;
    s.total++;
    if (hits_[i] > 0) s.hit++;
  }
  std::vector<ModuleSummary> out;
  out.reserve(by_module.size());
  for (auto& [_, s] : by_module) out.push_back(s);
  return out;
}

void CoverageRegistry::RestoreHits(const std::vector<uint64_t>& hits) {
  for (size_t i = 0; i < hits_.size() && i < hits.size(); ++i) {
    hits_[i] = hits[i];
  }
  for (size_t i = hits.size(); i < hits_.size(); ++i) hits_[i] = 0;
}

}  // namespace spatter
