#include "common/coverage.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace spatter {

CoverageRegistry& CoverageRegistry::Instance() {
  static CoverageRegistry registry;
  return registry;
}

namespace {
uint64_t Fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}
}  // namespace

size_t CoverageRegistry::Register(const std::string& module,
                                  const std::string& point) {
  const std::string key = module + "/" + point;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const size_t idx = points_.size();
  if (idx >= kMaxPoints) {
    std::fprintf(stderr,
                 "coverage: more than %zu registered points; raise "
                 "CoverageRegistry::kMaxPoints\n",
                 kMaxPoints);
    std::abort();
  }
  points_.push_back(Point{module, point, Fnv1a64(key)});
  index_.emplace(key, idx);
  return idx;
}

void CoverageRegistry::ResetHits() {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < points_.size(); ++i) {
    hits_[i].store(0, std::memory_order_relaxed);
  }
  covered_count_.store(0, std::memory_order_relaxed);
}

std::vector<uint32_t> CoverageRegistry::NewSitesSince(
    const std::vector<uint64_t>& snapshot) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> out;
  for (size_t i = 0; i < points_.size(); ++i) {
    const uint64_t before = i < snapshot.size() ? snapshot[i] : 0;
    if (hits_[i].load(std::memory_order_relaxed) > before) {
      out.push_back(static_cast<uint32_t>(i));
    }
  }
  return out;
}

namespace {
thread_local std::vector<uint32_t> trace_storage;
/// Epoch mark per site: trace_seen[i] == trace_epoch iff site i is
/// already in trace_storage for the current trace. Bumping the epoch on
/// BeginTrace resets all marks in O(1).
thread_local std::vector<uint32_t> trace_seen;
thread_local uint32_t trace_epoch = 0;
}  // namespace

void CoverageRegistry::BeginTrace() {
  trace_storage.clear();
  if (trace_seen.size() < kMaxPoints) trace_seen.resize(kMaxPoints, 0);
  if (++trace_epoch == 0) {  // epoch wrapped: clear stale marks
    std::fill(trace_seen.begin(), trace_seen.end(), 0);
    trace_epoch = 1;
  }
  trace_sink_ = &trace_storage;
}

void CoverageRegistry::TraceHit(uint32_t index) {
  if (index >= trace_seen.size() || trace_seen[index] == trace_epoch) return;
  trace_seen[index] = trace_epoch;
  trace_sink_->push_back(index);
}

std::vector<uint32_t> CoverageRegistry::TakeTrace() {
  trace_sink_ = nullptr;
  std::sort(trace_storage.begin(), trace_storage.end());
  return std::move(trace_storage);
}

std::vector<uint64_t> CoverageRegistry::KeysCoveredSince(
    const std::vector<uint64_t>& snapshot) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> keys;
  for (size_t i = 0; i < points_.size(); ++i) {
    const uint64_t before = i < snapshot.size() ? snapshot[i] : 0;
    if (hits_[i].load(std::memory_order_relaxed) > before) {
      keys.push_back(points_[i].key);
    }
  }
  return keys;
}

std::vector<uint64_t> CoverageRegistry::KeysOf(
    const std::vector<uint32_t>& indices,
    const std::set<std::string>& exclude_modules) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> keys;
  keys.reserve(indices.size());
  for (uint32_t i : indices) {
    if (i >= points_.size()) continue;
    if (exclude_modules.count(points_[i].module) > 0) continue;
    keys.push_back(points_[i].key);
  }
  return keys;
}

size_t CoverageRegistry::TotalPoints(const std::string& module) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (module.empty()) return points_.size();
  size_t n = 0;
  for (const auto& p : points_) {
    if (p.module == module) n++;
  }
  return n;
}

size_t CoverageRegistry::HitPoints(const std::string& module) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (hits_[i].load(std::memory_order_relaxed) == 0) continue;
    if (module.empty() || points_[i].module == module) n++;
  }
  return n;
}

double CoverageRegistry::Percent(const std::string& module) const {
  // Single lock acquisition: counting hit and total in two separate
  // locked calls could interleave with a concurrent registration and
  // report > 100% mid-campaign.
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  size_t hit = 0;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (!module.empty() && points_[i].module != module) continue;
    total++;
    if (hits_[i].load(std::memory_order_relaxed) > 0) hit++;
  }
  if (total == 0) return 0.0;
  return 100.0 * static_cast<double>(hit) / static_cast<double>(total);
}

std::vector<CoverageRegistry::ModuleSummary> CoverageRegistry::Summaries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, ModuleSummary> by_module;
  for (size_t i = 0; i < points_.size(); ++i) {
    auto& s = by_module[points_[i].module];
    s.module = points_[i].module;
    s.total++;
    if (hits_[i].load(std::memory_order_relaxed) > 0) s.hit++;
  }
  std::vector<ModuleSummary> out;
  out.reserve(by_module.size());
  for (auto& [_, s] : by_module) out.push_back(s);
  return out;
}

std::vector<uint64_t> CoverageRegistry::SnapshotHits() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> out(points_.size());
  for (size_t i = 0; i < points_.size(); ++i) {
    out[i] = hits_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void CoverageRegistry::RestoreHits(const std::vector<uint64_t>& hits) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < points_.size() && i < hits.size(); ++i) {
    hits_[i].store(hits[i], std::memory_order_relaxed);
  }
  for (size_t i = hits.size(); i < points_.size(); ++i) {
    hits_[i].store(0, std::memory_order_relaxed);
  }
  size_t covered = 0;
  for (size_t i = 0; i < points_.size(); ++i) {
    if (hits_[i].load(std::memory_order_relaxed) > 0) covered++;
  }
  covered_count_.store(covered, std::memory_order_relaxed);
}

}  // namespace spatter
