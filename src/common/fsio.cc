#include "common/fsio.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <system_error>

namespace spatter {

namespace {
std::atomic<bool> g_kill_before_rename{false};

Status CloseAndFail(int fd, const std::string& tmp, const char* what) {
  const int saved_errno = errno;
  if (fd >= 0) ::close(fd);
  ::unlink(tmp.c_str());
  return Status::Internal(std::string("cannot ") + what + " temp file '" +
                          tmp + "': " + std::strerror(saved_errno));
}
}  // namespace

void ArmAtomicWriteKillForTest() {
  g_kill_before_rename.store(true, std::memory_order_relaxed);
}

Status AtomicWriteFile(const std::string& path, const void* data,
                       size_t size) {
  // PID-suffixed so concurrent writers (two fleet coordinators pointed at
  // one dir by mistake) never clobber each other's temp file; the suffix
  // also keeps temp names from matching any reader's filename patterns
  // (cc-*.sptc, checkpoint.sptk, *.json).
  char suffix[32];
  std::snprintf(suffix, sizeof(suffix), ".tmp.%ld",
                static_cast<long>(::getpid()));
  const std::string tmp = path + suffix;
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return CloseAndFail(-1, tmp, "open");
  const char* p = static_cast<const char*>(data);
  size_t off = 0;
  while (off < size) {
    const ssize_t n = ::write(fd, p + off, size - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return CloseAndFail(fd, tmp, "write");
    }
    off += static_cast<size_t>(n);
  }
  // fdatasync BEFORE the rename: without it the rename can hit stable
  // storage ahead of the data (journal reordering), and a power loss
  // would leave the target pointing at a zero-length or partial file —
  // with the previous good contents already replaced. The process-kill
  // case does not need it, but a checkpoint's whole purpose is surviving
  // the machine, not just the process.
  if (::fdatasync(fd) != 0) return CloseAndFail(fd, tmp, "sync");
  if (::close(fd) != 0) return CloseAndFail(-1, tmp, "close");
  if (g_kill_before_rename.exchange(false, std::memory_order_relaxed)) {
    ::_exit(3);  // test seam: die like a SIGKILLed writer, pre-rename
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    ::unlink(tmp.c_str());
    return Status::Internal("cannot rename '" + tmp + "' over '" + path +
                            "': " + ec.message());
  }
  // Best-effort directory sync so the rename itself is durable; failure
  // (e.g. an unsupported filesystem) costs durability of the very last
  // write, not atomicity, so it is not an error.
  const std::string dir =
      std::filesystem::path(path).parent_path().string();
  const int dfd = ::open(dir.empty() ? "." : dir.c_str(),
                         O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, const std::string& text) {
  return AtomicWriteFile(path, text.data(), text.size());
}

}  // namespace spatter
