// Error model for Spatter-CPP, following the Status/Result idiom common in
// database codebases (Arrow, RocksDB). All fallible public APIs return
// Status or Result<T>; exceptions are not used across module boundaries.
#ifndef SPATTER_COMMON_STATUS_H_
#define SPATTER_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace spatter {

/// Machine-readable error categories.
///
/// kCrash deserves a note: the paper's campaign observed real process
/// crashes in the tested SDBMSs. Because one process hosts the whole
/// simulated campaign here, an injected crash bug surfaces as a Status with
/// code kCrash instead of tearing the process down; the fuzzer treats it
/// exactly as the paper treats a crash (records a crash bug, restarts the
/// per-iteration state).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< malformed input (bad WKT, bad SQL, bad matrix)
  kInvalidGeometry,    ///< semantically invalid geometry rejected by a dialect
  kUnsupported,        ///< feature/function not available in this dialect
  kNotFound,           ///< unknown table / function / variable
  kOutOfRange,         ///< index out of range (e.g. GeometryN)
  kInternal,           ///< invariant violation inside the library
  kCrash,              ///< simulated engine crash (injected crash bug fired)
};

/// Human-readable name for a StatusCode ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation with no payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status InvalidGeometry(std::string msg) {
    return Status(StatusCode::kInvalidGeometry, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Crash(std::string msg) {
    return Status(StatusCode::kCrash, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> carries either a value or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit from value (the common success path).
  Result(T value)  // NOLINT(runtime/explicit)
      : value_(std::move(value)), status_(Status::OK()) {}
  /// Implicit from error status; must not be OK.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  /// OK when the result holds a value; the error otherwise.
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  /// Moves the value out; callers must have checked ok().
  T Take() { return std::move(*value_); }

 private:
  std::optional<T> value_;
  Status status_ = Status::Internal("result has no value");
};

/// Propagates a non-OK Status to the caller.
#define SPATTER_RETURN_NOT_OK(expr)            \
  do {                                         \
    ::spatter::Status _st = (expr);            \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Evaluates a Result-returning expression; assigns the value on success,
/// returns the error Status otherwise.
#define SPATTER_ASSIGN_OR_RETURN(lhs, expr)    \
  auto SPATTER_CONCAT_(_res, __LINE__) = (expr);                     \
  if (!SPATTER_CONCAT_(_res, __LINE__).ok())                         \
    return SPATTER_CONCAT_(_res, __LINE__).status();                 \
  lhs = SPATTER_CONCAT_(_res, __LINE__).Take()

#define SPATTER_CONCAT_IMPL_(a, b) a##b
#define SPATTER_CONCAT_(a, b) SPATTER_CONCAT_IMPL_(a, b)

}  // namespace spatter

#endif  // SPATTER_COMMON_STATUS_H_
