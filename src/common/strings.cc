#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace spatter {

std::string FormatCoord(double v) {
  if (v == 0.0) return "0";  // also normalizes -0.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }
  return std::string(buf, ptr);
}

std::string ToUpperAscii(std::string s) {
  for (auto& c : s) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return s;
}

bool EqualsIgnoreCase(const std::string& s, const std::string& expect) {
  if (s.size() != expect.size()) return false;
  for (size_t i = 0; i < s.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(s[i])) !=
        std::toupper(static_cast<unsigned char>(expect[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace spatter
