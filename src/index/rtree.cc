#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace spatter::index {

using geom::Envelope;

struct RTree::Node {
  bool leaf = true;
  Envelope box;
  std::vector<RTreeEntry> entries;            // leaf payloads
  std::vector<std::unique_ptr<Node>> children;  // internal children

  void RecomputeBox() {
    box = Envelope();
    if (leaf) {
      for (const auto& e : entries) box.ExpandToInclude(e.box);
    } else {
      for (const auto& c : children) box.ExpandToInclude(c->box);
    }
  }
};

RTree::RTree(size_t max_entries)
    : root_(std::make_unique<Node>()),
      max_entries_(std::max<size_t>(max_entries, 4)),
      min_entries_(std::max<size_t>(max_entries / 2, 2)) {}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

void RTree::Insert(const Envelope& box, uint64_t id) {
  RTreeEntry entry{box, id};
  std::unique_ptr<Node> split;
  InsertRecursive(root_.get(), entry, 0, &split);
  if (split) {
    // Root overflowed: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split));
    new_root->RecomputeBox();
    root_ = std::move(new_root);
  }
  size_++;
}

void RTree::InsertRecursive(Node* node, const RTreeEntry& entry,
                            size_t /*level*/, std::unique_ptr<Node>* split_out) {
  if (node->leaf) {
    node->entries.push_back(entry);
    node->box.ExpandToInclude(entry.box);
    if (node->entries.size() > max_entries_) {
      QuadraticSplit(node, split_out, min_entries_);
    }
    return;
  }

  // Choose the child with least enlargement.
  size_t best = 0;
  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node->children.size(); ++i) {
    const Envelope& cb = node->children[i]->box;
    const double area = cb.Area();
    const double enlarge = cb.EnlargedArea(entry.box) - area;
    if (enlarge < best_enlarge ||
        (enlarge == best_enlarge && area < best_area)) {
      best = i;
      best_enlarge = enlarge;
      best_area = area;
    }
  }

  std::unique_ptr<Node> child_split;
  InsertRecursive(node->children[best].get(), entry, 0, &child_split);
  node->box.ExpandToInclude(entry.box);
  if (child_split) {
    node->children.push_back(std::move(child_split));
    if (node->children.size() > max_entries_) {
      QuadraticSplit(node, split_out, min_entries_);
    }
  }
}

void RTree::QuadraticSplit(Node* node, std::unique_ptr<Node>* new_node,
                           size_t min_entries) {
  auto other = std::make_unique<Node>();
  other->leaf = node->leaf;

  // Collect the boxes being distributed.
  const size_t n =
      node->leaf ? node->entries.size() : node->children.size();
  auto box_of = [&](size_t i) -> const Envelope& {
    return node->leaf ? node->entries[i].box : node->children[i]->box;
  };

  // Pick the pair of seeds wasting the most area together.
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double waste =
          box_of(i).EnlargedArea(box_of(j)) - box_of(i).Area() -
          box_of(j).Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<size_t> group_a{seed_a};
  std::vector<size_t> group_b{seed_b};
  Envelope box_a = box_of(seed_a);
  Envelope box_b = box_of(seed_b);
  for (size_t i = 0; i < n; ++i) {
    if (i == seed_a || i == seed_b) continue;
    // Force balance when one group must absorb the rest.
    const size_t remaining = n - group_a.size() - group_b.size();
    if (group_a.size() + remaining <= min_entries) {
      group_a.push_back(i);
      box_a.ExpandToInclude(box_of(i));
      continue;
    }
    if (group_b.size() + remaining <= min_entries) {
      group_b.push_back(i);
      box_b.ExpandToInclude(box_of(i));
      continue;
    }
    const double da = box_a.EnlargedArea(box_of(i)) - box_a.Area();
    const double db = box_b.EnlargedArea(box_of(i)) - box_b.Area();
    if (da < db || (da == db && group_a.size() < group_b.size())) {
      group_a.push_back(i);
      box_a.ExpandToInclude(box_of(i));
    } else {
      group_b.push_back(i);
      box_b.ExpandToInclude(box_of(i));
    }
  }

  if (node->leaf) {
    std::vector<RTreeEntry> keep;
    for (size_t i : group_a) keep.push_back(node->entries[i]);
    for (size_t i : group_b) other->entries.push_back(node->entries[i]);
    node->entries = std::move(keep);
  } else {
    std::vector<std::unique_ptr<Node>> keep;
    for (size_t i : group_a) keep.push_back(std::move(node->children[i]));
    for (size_t i : group_b) {
      other->children.push_back(std::move(node->children[i]));
    }
    node->children = std::move(keep);
  }
  node->RecomputeBox();
  other->RecomputeBox();
  *new_node = std::move(other);
}

void RTree::BulkLoad(std::vector<RTreeEntry> entries) {
  root_ = std::make_unique<Node>();
  size_ = entries.size();
  if (entries.empty()) return;

  // Sort-Tile-Recursive: sort by center x, slice, sort slices by center y.
  auto center_x = [](const RTreeEntry& e) {
    return (e.box.min_x() + e.box.max_x()) / 2.0;
  };
  auto center_y = [](const RTreeEntry& e) {
    return (e.box.min_y() + e.box.max_y()) / 2.0;
  };
  std::sort(entries.begin(), entries.end(),
            [&](const RTreeEntry& a, const RTreeEntry& b) {
              return center_x(a) < center_x(b);
            });
  const size_t leaf_count =
      (entries.size() + max_entries_ - 1) / max_entries_;
  const size_t slice_count = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  const size_t slice_size =
      (entries.size() + slice_count - 1) / slice_count;

  std::vector<std::unique_ptr<Node>> leaves;
  for (size_t s = 0; s * slice_size < entries.size(); ++s) {
    const size_t begin = s * slice_size;
    const size_t end = std::min(begin + slice_size, entries.size());
    std::sort(entries.begin() + begin, entries.begin() + end,
              [&](const RTreeEntry& a, const RTreeEntry& b) {
                return center_y(a) < center_y(b);
              });
    for (size_t i = begin; i < end; i += max_entries_) {
      auto leaf = std::make_unique<Node>();
      for (size_t j = i; j < std::min(i + max_entries_, end); ++j) {
        leaf->entries.push_back(entries[j]);
      }
      leaf->RecomputeBox();
      leaves.push_back(std::move(leaf));
    }
  }

  // Pack upward until a single root remains.
  std::vector<std::unique_ptr<Node>> level = std::move(leaves);
  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> parents;
    for (size_t i = 0; i < level.size(); i += max_entries_) {
      auto parent = std::make_unique<Node>();
      parent->leaf = false;
      for (size_t j = i; j < std::min(i + max_entries_, level.size()); ++j) {
        parent->children.push_back(std::move(level[j]));
      }
      parent->RecomputeBox();
      parents.push_back(std::move(parent));
    }
    level = std::move(parents);
  }
  root_ = std::move(level.front());
}

void RTree::Query(const Envelope& query,
                  const std::function<void(const RTreeEntry&)>& visit) const {
  if (root_->box.IsNull() && root_->entries.empty() &&
      root_->children.empty()) {
    return;
  }
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (!node->box.Intersects(query)) continue;
    if (node->leaf) {
      for (const auto& e : node->entries) {
        if (e.box.Intersects(query)) visit(e);
      }
    } else {
      for (const auto& c : node->children) stack.push_back(c.get());
    }
  }
}

std::vector<uint64_t> RTree::QueryIds(const Envelope& query) const {
  std::vector<uint64_t> ids;
  Query(query, [&ids](const RTreeEntry& e) { ids.push_back(e.id); });
  return ids;
}

void RTree::QueryIds(const Envelope& query, std::vector<uint64_t>* out) const {
  out->clear();
  Query(query, [out](const RTreeEntry& e) { out->push_back(e.id); });
}

void RTree::AllIds(std::vector<uint64_t>* out) const {
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->leaf) {
      for (const auto& e : node->entries) out->push_back(e.id);
    } else {
      for (const auto& c : node->children) stack.push_back(c.get());
    }
  }
}

size_t RTree::Height() const {
  if (size_ == 0) return 0;
  size_t h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->children.front().get();
    h++;
  }
  return h;
}

}  // namespace spatter::index
