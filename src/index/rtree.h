// R-tree spatial index (Guttman insert with quadratic split, plus STR bulk
// loading). This is the library's GiST analogue: the engine's CREATE INDEX
// builds one over a table's geometry envelopes, and PreparedGeometry uses
// one over segment envelopes.
#ifndef SPATTER_INDEX_RTREE_H_
#define SPATTER_INDEX_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "geom/envelope.h"

namespace spatter::index {

/// Entry stored in the tree: a bounding box and an opaque payload id.
struct RTreeEntry {
  geom::Envelope box;
  uint64_t id = 0;
};

class RTree {
 public:
  /// `max_entries` children per node (min is max/2, clamped >= 2).
  explicit RTree(size_t max_entries = 8);
  ~RTree();

  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;
  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Inserts one entry (Guttman: least-enlargement descent, quadratic
  /// split on overflow).
  void Insert(const geom::Envelope& box, uint64_t id);

  /// Rebuilds the tree from scratch with Sort-Tile-Recursive packing.
  void BulkLoad(std::vector<RTreeEntry> entries);

  /// Invokes `visit` for every entry whose box intersects `query`.
  void Query(const geom::Envelope& query,
             const std::function<void(const RTreeEntry&)>& visit) const;

  /// Convenience: collects matching ids.
  std::vector<uint64_t> QueryIds(const geom::Envelope& query) const;
  /// Allocation-reusing variant: clears `out` and fills it with matching
  /// ids (the engine probes once per join outer row, so the scratch
  /// buffer's capacity survives across probes).
  void QueryIds(const geom::Envelope& query, std::vector<uint64_t>* out) const;

  /// Appends every stored id to `out`, in unspecified order. The engine
  /// uses this when a probe envelope is null ("admit everything —
  /// evaluate exactly"), where Query would return nothing because a null
  /// envelope intersects nothing.
  void AllIds(std::vector<uint64_t>* out) const;

  /// NOTE: entries with a null (default-constructed) envelope are
  /// unreachable by construction — Envelope::Intersects is false for any
  /// null box and ExpandToInclude ignores them — so callers must keep
  /// null-envelope payloads out of the tree and track them separately
  /// (see Table::unindexed_rows). Pinned by rtree_test.

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Height of the tree (0 when empty); exposed for tests and benches.
  size_t Height() const;

 private:
  struct Node;
  std::unique_ptr<Node> root_;
  size_t max_entries_;
  size_t min_entries_;
  size_t size_ = 0;

  void InsertRecursive(Node* node, const RTreeEntry& entry, size_t level,
                       std::unique_ptr<Node>* split_out);
  static void QuadraticSplit(Node* node, std::unique_ptr<Node>* new_node,
                             size_t min_entries);
};

}  // namespace spatter::index

#endif  // SPATTER_INDEX_RTREE_H_
