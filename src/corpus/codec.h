// TestCaseCodec: compact binary serialization of test cases so they
// survive across runs (corpus persistence) and can be replayed
// (`spatter --replay=<file>`).
//
// Geometry rows are stored as WKB (reusing src/geom/wkb.cc) rather than
// WKT text: WKB carries raw IEEE-754 doubles, so a decoded record
// re-encodes byte-identically — WKT round-trips too because FormatCoord
// emits shortest-round-trip doubles, but WKB makes the fidelity structural
// instead of a property of the printer. Coverage sites are stored as
// stable 64-bit keys (CoverageRegistry::KeysOf), never as raw indices:
// indices are registration order, which differs between processes.
#ifndef SPATTER_CORPUS_CODEC_H_
#define SPATTER_CORPUS_CODEC_H_

#include <cstdint>
#include <vector>

#include "algo/affine.h"
#include "common/status.h"
#include "engine/dialect.h"
#include "fuzz/testcase.h"

namespace spatter::corpus {

/// What a serialized record is for. Corpus entries feed the mutation
/// scheduler; reproducers record one discrepancy's full inputs for replay.
enum class RecordKind : uint8_t { kCorpusEntry = 0, kReproducer = 1 };

/// One persistable test case: the database (and, for reproducers, the
/// query + transform) plus provenance and the coverage it bought.
struct TestCaseRecord {
  RecordKind kind = RecordKind::kCorpusEntry;
  engine::Dialect dialect = engine::Dialect::kPostgis;
  /// Rng::SplitSeed(master, iteration) of the producing iteration — the
  /// recorded seed that makes a reproducer's iteration re-runnable.
  uint64_t seed = 0;
  uint64_t iteration = 0;
  fuzz::DatabaseSpec sdb;
  bool has_query = false;
  fuzz::QuerySpec query;
  algo::AffineTransform transform;  ///< identity unless a reproducer
  /// Legacy v1 flag, kept in sync with `oracle == kCanonicalOnly` so old
  /// readers of re-encoded records stay correct.
  bool canonical_only = false;
  /// The oracle that detected a reproducer's discrepancy; `--replay`
  /// re-runs THIS check. v1 records decode to kAei/kCanonicalOnly.
  fuzz::OracleKind oracle = fuzz::OracleKind::kAei;
  /// Differential reproducers: the secondary dialect of the pair.
  engine::Dialect diff_secondary = engine::Dialect::kMysql;
  /// Stable coverage-site keys this entry's iteration hit (corpus entries).
  std::vector<uint64_t> sites;
  /// FaultIds the reproducer is expected to fire, as raw catalog values.
  std::vector<uint32_t> fault_ids;
};

class TestCaseCodec {
 public:
  /// Serializes to the versioned binary format. Fails (kInvalidArgument)
  /// when a row's WKT does not parse — rows are generator/mutator output,
  /// so that indicates a bug upstream, not bad user input.
  static Result<std::vector<uint8_t>> Encode(const TestCaseRecord& record);

  /// Parses a buffer produced by Encode. Rejects truncated or malformed
  /// input with kInvalidArgument (never reads out of bounds).
  static Result<TestCaseRecord> Decode(const std::vector<uint8_t>& data);

  /// Stable content signature of a record's coverage site set, used for
  /// corpus dedup and as the persisted filename stem.
  static uint64_t SiteSignature(const std::vector<uint64_t>& sites);
};

}  // namespace spatter::corpus

#endif  // SPATTER_CORPUS_CODEC_H_
