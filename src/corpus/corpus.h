// Coverage-guided corpus store.
//
// The campaign's blackbox loop throws every generated database away; the
// corpus keeps the ones that paid for themselves. An entry is admitted
// only when its iteration hit a coverage site this corpus had never seen
// (new-coverage rule) AND its site-set signature is unseen
// (coverage-signature dedup — the merge path can present an entry whose
// sites are new here but whose signature duplicates an admitted one).
//
// Eviction keeps the store bounded without losing rare behaviour: when the
// cap is exceeded, the lowest-energy entry that is NOT the sole holder of
// some site is dropped (AFL's "favored" idea). Covered-site and signature
// memory survive eviction on purpose — re-admitting a behaviour the corpus
// has already explored would just churn.
//
// Thread safety: every public method locks; the campaign hot path touches
// the corpus once per iteration (one Admit, plus one Entry copy on mutate
// iterations), so a single mutex is far from contended. Shards still keep
// corpora private and merge at the end — not for speed, but because
// shard-local admission is what keeps corpus mode deterministic for a
// fixed shard count.
#ifndef SPATTER_CORPUS_CORPUS_H_
#define SPATTER_CORPUS_CORPUS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "corpus/codec.h"

namespace spatter::corpus {

struct CorpusOptions {
  bool enabled = false;
  /// Percent of iterations that mutate a corpus entry instead of
  /// generating a fresh database (once the corpus is non-empty).
  int mutate_pct = 50;
  /// Entry cap; favored entries (sole holders of a site) survive eviction.
  size_t max_entries = 256;
  /// Record genuine Admit()s (not Restores) in a drainable log. The fleet
  /// worker enables this to stream fresh entries to the coordinator;
  /// off by default so non-fleet runs never accumulate the log.
  bool log_admissions = false;
};

class Corpus {
 public:
  explicit Corpus(const CorpusOptions& options) : options_(options) {}

  /// Admits `record` iff it covers a site key unseen by this corpus and
  /// its site signature is new. Returns true when stored (possibly
  /// evicting another entry to stay within the cap).
  bool Admit(TestCaseRecord record);

  /// Re-admits a persisted record with signature dedup only — no
  /// new-coverage requirement. Each persisted entry already justified its
  /// coverage when it was first admitted; re-litigating admission in
  /// load order (filename hashes, not campaign order) would silently
  /// drop entries whose sites happen to be union-covered by earlier
  /// files, and the next SaveTo would delete them from disk.
  bool Restore(TestCaseRecord record);

  size_t size() const;
  bool empty() const { return size() == 0; }
  /// Copy of entry `i` (bounds-unchecked beyond assert-like clamping).
  TestCaseRecord Entry(size_t i) const;
  /// All entries, copied; for persistence and tests.
  std::vector<TestCaseRecord> Entries() const;

  /// AFL-style energy per entry: sum over the entry's sites of
  /// 1/holders(site), divided by (1 + times fuzzed). Entries holding rare
  /// sites weigh more; the fuzz-count decay keeps one lucky early entry's
  /// mutant lineage from monopolizing the schedule.
  std::vector<double> Energies() const;

  /// Records that entry `i` was chosen for mutation (decays its energy).
  void NoteFuzzed(size_t i);

  /// Drains the admission log (see CorpusOptions::log_admissions): every
  /// record a genuine Admit() stored since the last drain, in admission
  /// order. Restored/merged entries are excluded on purpose — the fleet
  /// worker must not echo entries the coordinator broadcast back to it.
  std::vector<TestCaseRecord> TakeNewlyAdmitted();

  /// Distinct site keys covered by everything ever admitted.
  size_t covered_sites() const;
  uint64_t admitted() const;
  uint64_t rejected() const;
  uint64_t evicted() const;

  /// Folds every entry of `other` in with signature dedup only (the
  /// cross-shard merge): exact behavioural duplicates collapse, but
  /// entries are never re-litigated against the new-coverage rule —
  /// restored entries must survive the merge or SaveTo would delete
  /// their files (see Restore).
  void MergeFrom(const Corpus& other);

  /// Writes every entry to `dir` (created if missing) as
  /// cc-<signature>.sptc, removing stale cc-*.sptc files so the directory
  /// mirrors the corpus.
  Status SaveTo(const std::string& dir) const;

  /// Decodes every cc-*.sptc file in `dir` (sorted by name, so load order
  /// is deterministic) and restores it (signature dedup only). Returns
  /// the number restored; OK with zero when the directory does not exist
  /// yet.
  Result<size_t> LoadFrom(const std::string& dir);

  const CorpusOptions& options() const { return options_; }

 private:
  struct Slot {
    TestCaseRecord record;
    uint64_t signature = 0;
    uint64_t fuzz_count = 0;
  };

  bool AdmitLocked(TestCaseRecord record, bool require_new_site);
  void EvictLocked();
  double EnergyLocked(const Slot& slot) const;

  mutable std::mutex mu_;
  CorpusOptions options_;
  std::vector<Slot> entries_;
  std::vector<TestCaseRecord> admission_log_;  ///< log_admissions only
  std::set<uint64_t> covered_;            ///< site keys ever admitted
  std::set<uint64_t> signatures_;         ///< signature dedup, survives evict
  std::map<uint64_t, size_t> holders_;    ///< site key -> live entry count
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t evicted_ = 0;
};

}  // namespace spatter::corpus

#endif  // SPATTER_CORPUS_CORPUS_H_
