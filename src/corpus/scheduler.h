// Generate-vs-mutate scheduling with AFL-style energy.
//
// Per iteration the campaign asks two questions: should this iteration
// mutate a corpus entry instead of generating a fresh database, and if so,
// which entry? Both answers are drawn from the campaign's per-iteration
// RNG stream (Rng::SplitSeed), so the schedule for shard k of S is a pure
// function of (seed, k, S) and that shard's own corpus history — corpus
// mode stays deterministic for a fixed --jobs.
//
// Entry selection samples proportionally to Corpus::Energies(): an entry's
// energy is the sum of 1/holders(site) over its coverage sites, so sole
// holders of rare behaviour are mutated most — the AFL "favored" heuristic
// in roulette form.
#ifndef SPATTER_CORPUS_SCHEDULER_H_
#define SPATTER_CORPUS_SCHEDULER_H_

#include "common/rng.h"
#include "corpus/corpus.h"

namespace spatter::corpus {

class Scheduler {
 public:
  explicit Scheduler(const CorpusOptions& options) : options_(options) {}

  /// True when this iteration should mutate: the corpus has entries, the
  /// mutate-vs-generate coin (mutate_pct) lands on mutate, the shard is
  /// past its warmup, and the corpus is still "hot" —
  /// `iterations_since_admit` below the staleness window. Warmup keeps
  /// the earliest iterations generating (fresh databases are cheapest to
  /// find faults with, and mutating iteration 1's lone entry just clones
  /// it); staleness pauses mutation once feedback stops admitting, so a
  /// saturated corpus cannot tax exploration indefinitely. Always
  /// consumes exactly one draw from `rng` so the downstream stream only
  /// depends on the decision, not on how it was reached.
  bool ShouldMutate(const Corpus& corpus, size_t shard_iterations_run,
                    size_t iterations_since_admit, Rng* rng) const {
    const bool coin = rng->Percent(options_.mutate_pct);
    return coin && !corpus.empty() && shard_iterations_run >= kWarmup &&
           iterations_since_admit < kStaleWindow;
  }

  /// Shard-local iterations of pure generation before mutation may start.
  static constexpr size_t kWarmup = 12;
  /// Shard-local iterations without a corpus admission after which
  /// mutation pauses until feedback resumes.
  static constexpr size_t kStaleWindow = 25;

  /// Index of the entry to mutate, sampled proportionally to energy
  /// (uniform when all energies are zero). Requires a non-empty corpus.
  size_t PickEntry(const Corpus& corpus, Rng* rng) const;

  /// Live steering of the mutate-vs-generate coin (fleet TUNE frames).
  /// Advisory: it changes the probability of future draws only — each
  /// ShouldMutate still consumes exactly one RNG draw — so it never
  /// participates in any determinism contract.
  void set_mutate_pct(int pct) { options_.mutate_pct = pct; }
  int mutate_pct() const { return options_.mutate_pct; }

 private:
  CorpusOptions options_;
};

}  // namespace spatter::corpus

#endif  // SPATTER_CORPUS_SCHEDULER_H_
