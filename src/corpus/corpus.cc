#include "corpus/corpus.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/fsio.h"
#include "obs/metrics.h"

namespace spatter::corpus {

namespace fs = std::filesystem;

bool Corpus::Admit(TestCaseRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  return AdmitLocked(std::move(record), /*require_new_site=*/true);
}

bool Corpus::Restore(TestCaseRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  return AdmitLocked(std::move(record), /*require_new_site=*/false);
}

bool Corpus::AdmitLocked(TestCaseRecord record, bool require_new_site) {
  // Canonicalize the site set: traces arrive ordered by registry index,
  // and registration order is a race across shards — two runs would hash
  // the same site SET to different signatures. Sorted keys make records
  // (and their persisted filenames) run-independent.
  std::sort(record.sites.begin(), record.sites.end());
  record.sites.erase(std::unique(record.sites.begin(), record.sites.end()),
                     record.sites.end());
  bool has_new_site = false;
  for (uint64_t key : record.sites) {
    if (covered_.find(key) == covered_.end()) {
      has_new_site = true;
      break;
    }
  }
  const uint64_t signature = TestCaseCodec::SiteSignature(record.sites);
  if ((require_new_site && !has_new_site) ||
      signatures_.count(signature) > 0) {
    rejected_++;
    SPATTER_METRIC_INC("corpus.rejected");
    return false;
  }
  for (uint64_t key : record.sites) {
    covered_.insert(key);
    holders_[key]++;
  }
  signatures_.insert(signature);
  if (options_.log_admissions && require_new_site) {
    admission_log_.push_back(record);
  }
  entries_.push_back(Slot{std::move(record), signature});
  admitted_++;
  static obs::Counter* admitted_counter =
      obs::MetricsRegistry::Instance().GetCounter("corpus.admitted");
  static obs::Counter* restored_counter =
      obs::MetricsRegistry::Instance().GetCounter("corpus.restored");
  (require_new_site ? admitted_counter : restored_counter)->Add();
  static obs::Gauge* size_gauge =
      obs::MetricsRegistry::Instance().GetGauge("corpus.size");
  if (entries_.size() > options_.max_entries) EvictLocked();
  size_gauge->Set(static_cast<int64_t>(entries_.size()));
  return true;
}

std::vector<TestCaseRecord> Corpus::TakeNewlyAdmitted() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TestCaseRecord> out = std::move(admission_log_);
  admission_log_.clear();
  return out;
}

double Corpus::EnergyLocked(const Slot& slot) const {
  double energy = 0.0;
  for (uint64_t key : slot.record.sites) {
    auto it = holders_.find(key);
    if (it != holders_.end() && it->second > 0) {
      energy += 1.0 / static_cast<double>(it->second);
    }
  }
  return energy / static_cast<double>(1 + slot.fuzz_count);
}

void Corpus::NoteFuzzed(size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  if (i < entries_.size()) entries_[i].fuzz_count++;
}

void Corpus::EvictLocked() {
  // Victim: lowest energy among entries that are not the sole holder of
  // any site. If every entry is favored, the oldest goes — its sites stay
  // in covered_, so its behaviour is remembered even though the bytes are
  // dropped.
  size_t victim = entries_.size();
  double victim_energy = 0.0;
  for (size_t i = 0; i < entries_.size(); ++i) {
    bool favored = false;
    for (uint64_t key : entries_[i].record.sites) {
      auto it = holders_.find(key);
      if (it != holders_.end() && it->second == 1) {
        favored = true;
        break;
      }
    }
    if (favored) continue;
    const double energy = EnergyLocked(entries_[i]);
    if (victim == entries_.size() || energy < victim_energy) {
      victim = i;
      victim_energy = energy;
    }
  }
  if (victim == entries_.size()) victim = 0;
  for (uint64_t key : entries_[victim].record.sites) {
    auto it = holders_.find(key);
    if (it != holders_.end() && --it->second == 0) holders_.erase(it);
  }
  entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(victim));
  evicted_++;
  SPATTER_METRIC_INC("corpus.evicted");
}

size_t Corpus::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

TestCaseRecord Corpus::Entry(size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) return TestCaseRecord{};
  return entries_[std::min(i, entries_.size() - 1)].record;
}

std::vector<TestCaseRecord> Corpus::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TestCaseRecord> out;
  out.reserve(entries_.size());
  for (const auto& slot : entries_) out.push_back(slot.record);
  return out;
}

std::vector<double> Corpus::Energies() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<double> out;
  out.reserve(entries_.size());
  for (const auto& slot : entries_) out.push_back(EnergyLocked(slot));
  return out;
}

size_t Corpus::covered_sites() const {
  std::lock_guard<std::mutex> lock(mu_);
  return covered_.size();
}

uint64_t Corpus::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t Corpus::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

uint64_t Corpus::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

void Corpus::MergeFrom(const Corpus& other) {
  // Copy first: locking both corpora at once invites deadlock if callers
  // ever merge in both directions.
  //
  // Restore semantics (signature dedup only), NOT the new-coverage rule:
  // shard corpora contain entries restored from disk, and re-litigating
  // their admission in merge order would drop some of them — after which
  // SaveTo's stale-file cleanup deletes them permanently. Every incoming
  // entry already justified itself in its own shard's context; exact
  // behavioural duplicates across shards still collapse by signature.
  std::vector<TestCaseRecord> incoming = other.Entries();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& record : incoming) {
    AdmitLocked(std::move(record), /*require_new_site=*/false);
  }
}

namespace {
constexpr const char kEntryPrefix[] = "cc-";
constexpr const char kEntrySuffix[] = ".sptc";

std::string EntryFileName(uint64_t signature) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%016llx%s", kEntryPrefix,
                static_cast<unsigned long long>(signature), kEntrySuffix);
  return buf;
}

bool IsEntryFileName(const std::string& name) {
  return name.size() > sizeof(kEntryPrefix) - 1 + sizeof(kEntrySuffix) - 1 &&
         name.compare(0, sizeof(kEntryPrefix) - 1, kEntryPrefix) == 0 &&
         name.compare(name.size() - (sizeof(kEntrySuffix) - 1),
                      sizeof(kEntrySuffix) - 1, kEntrySuffix) == 0;
}
}  // namespace

Status Corpus::SaveTo(const std::string& dir) const {
  std::vector<Slot> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = entries_;
  }
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create corpus dir '" + dir +
                            "': " + ec.message());
  }
  std::set<std::string> live;
  for (const auto& slot : snapshot) {
    const std::string name = EntryFileName(slot.signature);
    live.insert(name);
    auto encoded = TestCaseCodec::Encode(slot.record);
    if (!encoded.ok()) return encoded.status();
    // Atomic write-rename: the fleet checkpoint path re-saves the corpus
    // mid-campaign, so a coordinator killed here must leave every entry
    // file whole — a torn .sptc would be silently skipped on the next
    // load and then deleted as stale by the save after that.
    const Status written =
        AtomicWriteFile((fs::path(dir) / name).string(),
                        encoded.value().data(), encoded.value().size());
    if (!written.ok()) return written;
  }
  // Drop stale entry files so the directory mirrors the corpus (evicted
  // and merged-away entries would otherwise resurrect on the next load),
  // plus temp files orphaned by a writer killed mid-persist.
  for (const auto& item : fs::directory_iterator(dir, ec)) {
    const std::string name = item.path().filename().string();
    const bool stale_entry =
        IsEntryFileName(name) && live.find(name) == live.end();
    const bool orphan_tmp =
        name.find(std::string(kEntrySuffix) + ".tmp.") != std::string::npos;
    if (stale_entry || orphan_tmp) fs::remove(item.path(), ec);
  }
  return Status::OK();
}

Result<size_t> Corpus::LoadFrom(const std::string& dir) {
  std::error_code ec;
  if (!fs::exists(dir, ec)) return size_t{0};
  std::vector<fs::path> files;
  for (const auto& item : fs::directory_iterator(dir, ec)) {
    if (IsEntryFileName(item.path().filename().string())) {
      files.push_back(item.path());
    }
  }
  if (ec) {
    return Status::Internal("cannot list corpus dir '" + dir +
                            "': " + ec.message());
  }
  std::sort(files.begin(), files.end());  // deterministic admission order
  size_t loaded = 0;
  for (const auto& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::vector<uint8_t> data((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
    auto decoded = TestCaseCodec::Decode(data);
    if (!decoded.ok()) continue;  // skip corrupt files, keep the rest
    if (Restore(decoded.Take())) loaded++;
  }
  return loaded;
}

}  // namespace spatter::corpus
