#include "corpus/mutator.h"

#include <cmath>

#include "common/coverage.h"
#include "engine/functions.h"
#include "geom/wkt_reader.h"
#include "obs/trace.h"

namespace spatter::corpus {

using geom::Coord;
using geom::GeomPtr;
using geom::GeomType;

namespace {

enum class MutationKind {
  kCoordNudge = 0,
  kSnapToGrid,
  kVertexInsert,
  kVertexDelete,
  kGeometrySwap,
  kEmptyInject,
  kNestedWrap,
  kVertexShare,
  kAffineJolt,
  kNumKinds,
};

const char* MutationKindName(MutationKind kind) {
  switch (kind) {
    case MutationKind::kCoordNudge:
      return "coord_nudge";
    case MutationKind::kSnapToGrid:
      return "snap_to_grid";
    case MutationKind::kVertexInsert:
      return "vertex_insert";
    case MutationKind::kVertexDelete:
      return "vertex_delete";
    case MutationKind::kGeometrySwap:
      return "geometry_swap";
    case MutationKind::kEmptyInject:
      return "empty_inject";
    case MutationKind::kNestedWrap:
      return "nested_wrap";
    case MutationKind::kVertexShare:
      return "vertex_share";
    case MutationKind::kAffineJolt:
      return "affine_jolt";
    case MutationKind::kNumKinds:
      break;
  }
  return "unknown";
}

/// Mutable views into a geometry's coordinate storage: every line/ring
/// sequence plus every point, gathered recursively.
struct CoordSeqs {
  std::vector<std::vector<Coord>*> seqs;
  std::vector<geom::Point*> points;
};

void CollectSeqs(geom::Geometry* g, CoordSeqs* out) {
  switch (g->type()) {
    case GeomType::kPoint:
      out->points.push_back(static_cast<geom::Point*>(g));
      break;
    case GeomType::kLineString:
      out->seqs.push_back(
          &static_cast<geom::LineString*>(g)->mutable_points());
      break;
    case GeomType::kPolygon:
      for (auto& ring : static_cast<geom::Polygon*>(g)->mutable_rings()) {
        out->seqs.push_back(&ring);
      }
      break;
    default:
      for (auto& e :
           static_cast<geom::GeometryCollection*>(g)->mutable_elements()) {
        CollectSeqs(e.get(), out);
      }
      break;
  }
}

double NudgeDelta(Rng* rng) {
  static const double kDeltas[] = {-2, -1, -0.5, -0.1, 0.1, 0.5, 1, 2};
  return kDeltas[rng->Below(8)];
}

/// Copies a vertex from a random row into another row's geometry. Shared
/// vertices are where touches/crosses/boundary bugs live, and independent
/// coordinate nudges destroy them — this mutation puts them back, so it
/// also runs as an extra pass beyond the uniform kind roulette.
bool ApplyVertexShare(fuzz::DatabaseSpec* out, Rng* rng) {
  size_t tt, tr, st, sr;
  if (!MutationEngine::PickRow(*out, rng, &tt, &tr) ||
      !MutationEngine::PickRow(*out, rng, &st, &sr)) {
    return false;
  }
  auto target = geom::ReadWkt(out->tables[tt].rows[tr]);
  auto source = geom::ReadWkt(out->tables[st].rows[sr]);
  if (!target.ok() || !source.ok()) return false;
  GeomPtr g = target.Take();
  std::vector<Coord> donor_coords;
  source.value()->MutateCoords([&donor_coords](const Coord& c) {
    donor_coords.push_back(c);
    return c;
  });
  if (donor_coords.empty()) return false;
  const Coord shared = donor_coords[rng->Below(donor_coords.size())];
  CoordSeqs cs;
  CollectSeqs(g.get(), &cs);
  if (!cs.points.empty() && (cs.seqs.empty() || rng->Percent(30))) {
    geom::Point* p = cs.points[rng->Below(cs.points.size())];
    if (p->IsEmpty()) return false;
    SPATTER_COV("corpus", "mutate_vertex_share");
    p->set_coord(shared);
  } else {
    if (cs.seqs.empty()) return false;
    auto* seq = cs.seqs[rng->Below(cs.seqs.size())];
    if (seq->empty()) return false;
    SPATTER_COV("corpus", "mutate_vertex_share");
    const bool was_closed = seq->size() >= 2 && seq->front() == seq->back();
    const size_t idx = rng->Below(seq->size());
    (*seq)[idx] = shared;
    // Preserve closure when an endpoint of a closed seq was replaced.
    if (was_closed && (idx == 0 || idx + 1 == seq->size())) {
      seq->front() = shared;
      seq->back() = shared;
    }
  }
  out->tables[tt].rows[tr] = g->ToWkt();
  return true;
}

}  // namespace

bool MutationEngine::PickRow(const fuzz::DatabaseSpec& sdb, Rng* rng,
                             size_t* table, size_t* row) {
  std::vector<size_t> non_empty;
  for (size_t t = 0; t < sdb.tables.size(); ++t) {
    if (!sdb.tables[t].rows.empty()) non_empty.push_back(t);
  }
  if (non_empty.empty()) return false;
  *table = non_empty[rng->Below(non_empty.size())];
  *row = rng->Below(sdb.tables[*table].rows.size());
  return true;
}

fuzz::DatabaseSpec MutationEngine::MutateDatabase(
    const fuzz::DatabaseSpec& sdb, Rng* rng) const {
  fuzz::DatabaseSpec out = sdb;
  const int rounds = 1 + static_cast<int>(rng->Below(
                            static_cast<uint64_t>(config_.max_mutations)));
  for (int round = 0; round < rounds; ++round) {
    const auto kind = static_cast<MutationKind>(
        rng->Below(static_cast<uint64_t>(MutationKind::kNumKinds)));
    obs::TraceRecorder::Instance().Emit(
        "mutate.op", static_cast<uint64_t>(round), MutationKindName(kind));

    if (kind == MutationKind::kVertexShare) {
      ApplyVertexShare(&out, rng);
      continue;
    }
    if (kind == MutationKind::kGeometrySwap) {
      // Exchange raw rows; parsing is unnecessary and the swap crosses
      // the table boundary that join predicates see.
      size_t t1, r1, t2, r2;
      if (!PickRow(out, rng, &t1, &r1) || !PickRow(out, rng, &t2, &r2)) {
        continue;
      }
      SPATTER_COV("corpus", "mutate_geometry_swap");
      std::swap(out.tables[t1].rows[r1], out.tables[t2].rows[r2]);
      continue;
    }

    size_t t, r;
    if (!PickRow(out, rng, &t, &r)) continue;
    std::string& wkt = out.tables[t].rows[r];
    auto parsed = geom::ReadWkt(wkt);
    if (!parsed.ok()) continue;
    GeomPtr g = parsed.Take();

    switch (kind) {
      case MutationKind::kCoordNudge: {
        SPATTER_COV("corpus", "mutate_coord_nudge");
        g->MutateCoords([&](const Coord& c) {
          if (!rng->Percent(60)) return c;
          return Coord{c.x + NudgeDelta(rng), c.y + NudgeDelta(rng)};
        });
        break;
      }
      case MutationKind::kSnapToGrid: {
        SPATTER_COV("corpus", "mutate_snap_to_grid");
        g->MutateCoords([](const Coord& c) {
          return Coord{std::nearbyint(c.x), std::nearbyint(c.y)};
        });
        break;
      }
      case MutationKind::kVertexInsert: {
        CoordSeqs cs;
        CollectSeqs(g.get(), &cs);
        if (cs.seqs.empty()) break;
        auto* seq = cs.seqs[rng->Below(cs.seqs.size())];
        if (seq->size() < 2) break;
        SPATTER_COV("corpus", "mutate_vertex_insert");
        const size_t edge = rng->Below(seq->size() - 1);
        const Coord& a = (*seq)[edge];
        const Coord& b = (*seq)[edge + 1];
        Coord mid{(a.x + b.x) / 2, (a.y + b.y) / 2};
        if (rng->Percent(50)) {
          mid.x += NudgeDelta(rng);
          mid.y += NudgeDelta(rng);
        }
        seq->insert(seq->begin() + static_cast<ptrdiff_t>(edge) + 1, mid);
        break;
      }
      case MutationKind::kVertexDelete: {
        CoordSeqs cs;
        CollectSeqs(g.get(), &cs);
        if (cs.seqs.empty()) break;
        auto* seq = cs.seqs[rng->Below(cs.seqs.size())];
        // Only interior vertices go, so ring closure (first == last) and
        // endpoints survive; size floors keep lines >= 2 and rings >= 4.
        const bool ring = seq->size() >= 2 && seq->front() == seq->back();
        const size_t min_size = ring ? 5 : 3;
        if (seq->size() < min_size) break;
        SPATTER_COV("corpus", "mutate_vertex_delete");
        const size_t victim = 1 + rng->Below(seq->size() - 2);
        seq->erase(seq->begin() + static_cast<ptrdiff_t>(victim));
        break;
      }
      case MutationKind::kEmptyInject: {
        SPATTER_COV("corpus", "mutate_empty_inject");
        g = geom::MakeEmpty(g->type());
        break;
      }
      case MutationKind::kNestedWrap: {
        SPATTER_COV("corpus", "mutate_nested_wrap");
        std::vector<GeomPtr> elems;
        elems.push_back(std::move(g));
        if (rng->Percent(40)) {
          // An EMPTY sibling: several of the catalog's bugs are exactly
          // "EMPTY element inside a collection" misbehaviour.
          elems.push_back(geom::MakeEmpty(
              rng->Bool() ? GeomType::kPoint : GeomType::kPolygon));
        }
        g = geom::MakeCollection(GeomType::kGeometryCollection,
                                 std::move(elems));
        break;
      }
      case MutationKind::kAffineJolt: {
        // Whole-geometry jumps into coordinate regimes the generator
        // under-produces but the paper's listings feature: decimal
        // scaling (Listing 3 broke after scaling by 10), axis swap
        // (Listing 4's x/y asymmetry), the all-negative quadrant, and
        // displacement into the hundreds.
        SPATTER_COV("corpus", "mutate_affine_jolt");
        switch (rng->Below(5)) {
          case 0:
            g->MutateCoords([](const Coord& c) {
              return Coord{10 * c.x, 10 * c.y};
            });
            break;
          case 1:
            g->MutateCoords([](const Coord& c) {
              return Coord{c.x / 10, c.y / 10};
            });
            break;
          case 2:
            g->MutateCoords([](const Coord& c) {
              return Coord{c.x == 0 ? 0.0 : -std::fabs(c.x),
                           c.y == 0 ? 0.0 : -std::fabs(c.y)};
            });
            break;
          case 3:
            g->MutateCoords([](const Coord& c) { return Coord{c.y, c.x}; });
            break;
          default: {
            const double dx = static_cast<double>(100 * rng->IntIn(-9, 9));
            const double dy = static_cast<double>(100 * rng->IntIn(-9, 9));
            g->MutateCoords(
                [dx, dy](const Coord& c) { return Coord{c.x + dx, c.y + dy}; });
            break;
          }
        }
        break;
      }
      case MutationKind::kVertexShare:
      case MutationKind::kGeometrySwap:
      case MutationKind::kNumKinds:
        break;
    }
    wkt = g->ToWkt();
  }
  // Shared-vertex topology (junctions, touching boundaries) is fragile
  // under the coordinate mutations above and rare under independent
  // randomness, so vertex sharing gets its own extra shot.
  if (rng->Percent(35)) ApplyVertexShare(&out, rng);
  return out;
}

fuzz::QuerySpec MutationEngine::MutateQuery(const fuzz::QuerySpec& query,
                                            engine::Dialect dialect,
                                            Rng* rng) const {
  fuzz::QuerySpec out = query;
  std::vector<std::string> names;
  for (const auto* p : engine::PredicatesFor(dialect)) {
    names.push_back(p->name);
  }
  if (engine::GetDialectTraits(dialect).has_same_as_operator) {
    names.push_back("~=");
  }
  if (names.empty()) return out;
  SPATTER_COV("corpus", "mutate_predicate_swap");
  std::string pick = names[rng->Below(names.size())];
  if (pick == query.predicate && names.size() > 1) {
    pick = names[rng->Below(names.size())];  // one re-roll, not a loop
  }
  out.predicate = pick;
  out.extra = engine::PredicateExtra::kNone;
  out.distance = 0.0;
  out.pattern.clear();
  if (pick != "~=") {
    const auto* fn = engine::FindFunction(pick);
    out.extra = fn->extra;
    if (out.extra == engine::PredicateExtra::kDistance) {
      out.distance =
          static_cast<double>(rng->IntIn(0, 2 * config_.coord_range));
    } else if (out.extra == engine::PredicateExtra::kPattern) {
      static const char* kPatterns[] = {
          "T*F**F***", "FF*FF****", "T********", "T*T***T**", "0********",
      };
      out.pattern = kPatterns[rng->Below(5)];
    }
  }
  return out;
}

algo::AffineTransform MutationEngine::MutateTransform(
    const algo::AffineTransform& t, Rng* rng) const {
  for (int attempt = 0; attempt < 8; ++attempt) {
    double m[6] = {t.a11(), t.a12(), t.a21(), t.a22(), t.b1(), t.b2()};
    const size_t param = rng->Below(6);
    int64_t step = rng->IntIn(-3, 3);
    if (step == 0) step = 1;
    m[param] += static_cast<double>(step);
    algo::AffineTransform candidate(m[0], m[1], m[2], m[3], m[4], m[5]);
    if (candidate.IsInvertible()) {
      SPATTER_COV("corpus", "mutate_affine_param");
      return candidate;
    }
  }
  // Translation perturbation never touches the determinant.
  return algo::AffineTransform(t.a11(), t.a12(), t.a21(), t.a22(),
                               t.b1() + 1.0, t.b2() - 1.0);
}

}  // namespace spatter::corpus
