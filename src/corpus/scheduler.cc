#include "corpus/scheduler.h"

#include "obs/metrics.h"

namespace spatter::corpus {

size_t Scheduler::PickEntry(const Corpus& corpus, Rng* rng) const {
  SPATTER_METRIC_INC("corpus.sched.picks");
  const std::vector<double> energies = corpus.Energies();
  if (energies.empty()) return 0;
  double total = 0.0;
  for (double e : energies) total += e;
  if (total <= 0.0) return rng->Below(energies.size());
  // Roulette-wheel selection. One Double01() draw regardless of where the
  // wheel stops, keeping the RNG stream's shape schedule-independent.
  const double target = rng->Double01() * total;
  double acc = 0.0;
  for (size_t i = 0; i < energies.size(); ++i) {
    acc += energies[i];
    if (target < acc) return i;
  }
  return energies.size() - 1;
}

}  // namespace spatter::corpus
