// Structural, geometry-aware mutation of stored test cases.
//
// Blind byte-level mutation of WKT would mostly produce parse errors; the
// mutators here work on the parsed geometry model (the style of EET's
// data-aware mutator, adapted from SQL expressions to geometries), so
// every output is again a syntactically valid database spec:
//   - coordinate nudge       small perturbation of one row's vertices
//   - snap to grid           round a row's coordinates to integers
//   - vertex insert/delete   grow or shrink a line/ring (closure kept)
//   - geometry swap          exchange rows between tables
//   - EMPTY injection        replace a row with the typed EMPTY
//   - nested wrap            wrap a row in GEOMETRYCOLLECTION(...)
// plus query-level mutators (predicate swap, affine-parameter swap) used
// by the campaign's corpus path. All randomness flows through the caller's
// Rng, which the campaign reseeds from Rng::SplitSeed — mutation output is
// a pure function of (parent, iteration seed).
#ifndef SPATTER_CORPUS_MUTATOR_H_
#define SPATTER_CORPUS_MUTATOR_H_

#include "algo/affine.h"
#include "common/rng.h"
#include "engine/dialect.h"
#include "fuzz/testcase.h"

namespace spatter::corpus {

struct MutatorConfig {
  /// Stacked mutations per output, 1..max (AFL stacks small steps too).
  int max_mutations = 3;
  /// Coordinate magnitude used by grid snapping and vertex insertion;
  /// matches GeneratorConfig::coord_range so mutants stay in-distribution.
  int coord_range = 10;
};

class MutationEngine {
 public:
  explicit MutationEngine(const MutatorConfig& config = MutatorConfig())
      : config_(config) {}

  /// Applies 1..max_mutations random structural mutations to a copy of
  /// `sdb`. Rows that fail to parse (there should be none) pass through
  /// unchanged.
  fuzz::DatabaseSpec MutateDatabase(const fuzz::DatabaseSpec& sdb,
                                    Rng* rng) const;

  /// Predicate swap: replaces the predicate (and its extra parameter) with
  /// another from `dialect`'s candidate list, keeping the table pair.
  fuzz::QuerySpec MutateQuery(const fuzz::QuerySpec& query,
                              engine::Dialect dialect, Rng* rng) const;

  /// Affine-parameter swap: perturbs one matrix entry by an integer step,
  /// re-rolling until the linear part stays invertible.
  algo::AffineTransform MutateTransform(const algo::AffineTransform& t,
                                        Rng* rng) const;

  /// Picks a uniformly random (table, row) among non-empty tables; false
  /// when the database has no rows. Shared with the campaign's
  /// derive-splice path so row-picking semantics live in one place.
  static bool PickRow(const fuzz::DatabaseSpec& sdb, Rng* rng, size_t* table,
                      size_t* row);

 private:
  MutatorConfig config_;
};

}  // namespace spatter::corpus

#endif  // SPATTER_CORPUS_MUTATOR_H_
