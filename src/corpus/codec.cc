#include "corpus/codec.h"

#include <cstring>

#include "geom/wkb.h"
#include "geom/wkt_reader.h"
#include "geom/wkt_writer.h"

namespace spatter::corpus {

namespace {

// Format: "SPTC" magic, u16 version, then the fields of TestCaseRecord in
// declaration order. All integers little-endian; doubles as IEEE-754 bit
// patterns. Strings and byte blobs are u32 length + payload.
//
// Version 2 appends two u8 fields after the v1 payload — the detecting
// oracle kind and the differential secondary dialect — so v1 records
// remain decodable (the fields default to what canonical_only implies).
constexpr char kMagic[4] = {'S', 'P', 'T', 'C'};
constexpr uint16_t kVersion = 2;

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  for (int i = 0; i < 2; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back((v >> (8 * i)) & 0xff);
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->insert(out->end(), s.begin(), s.end());
}

void PutBlob(std::vector<uint8_t>* out, const std::vector<uint8_t>& b) {
  PutU32(out, static_cast<uint32_t>(b.size()));
  out->insert(out->end(), b.begin(), b.end());
}

/// Bounds-checked sequential reader over the input buffer.
class Reader {
 public:
  explicit Reader(const std::vector<uint8_t>& data) : data_(data) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = data_[pos_++];
    return true;
  }
  bool U16(uint16_t* v) {
    if (pos_ + 2 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 2; ++i) *v |= uint16_t(data_[pos_++]) << (8 * i);
    return true;
  }
  bool U32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) *v |= uint32_t(data_[pos_++]) << (8 * i);
    return true;
  }
  bool U64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) *v |= uint64_t(data_[pos_++]) << (8 * i);
    return true;
  }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool String(std::string* s) {
    uint32_t len;
    if (!U32(&len) || pos_ + len > data_.size()) return false;
    s->assign(reinterpret_cast<const char*>(data_.data()) + pos_, len);
    pos_ += len;
    return true;
  }
  bool Blob(std::vector<uint8_t>* b) {
    uint32_t len;
    if (!U32(&len) || pos_ + len > data_.size()) return false;
    b->assign(data_.begin() + pos_, data_.begin() + pos_ + len);
    pos_ += len;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  const std::vector<uint8_t>& data_;
  size_t pos_ = 0;
};

Status Truncated() {
  return Status::InvalidArgument("test-case record truncated or malformed");
}

}  // namespace

Result<std::vector<uint8_t>> TestCaseCodec::Encode(
    const TestCaseRecord& record) {
  std::vector<uint8_t> out;
  out.insert(out.end(), kMagic, kMagic + 4);
  PutU16(&out, kVersion);
  PutU8(&out, static_cast<uint8_t>(record.kind));
  PutU8(&out, static_cast<uint8_t>(record.dialect));
  PutU64(&out, record.seed);
  PutU64(&out, record.iteration);
  PutU8(&out, record.sdb.with_index ? 1 : 0);

  PutU32(&out, static_cast<uint32_t>(record.sdb.tables.size()));
  for (const auto& table : record.sdb.tables) {
    PutString(&out, table.name);
    PutU32(&out, static_cast<uint32_t>(table.rows.size()));
    for (const auto& wkt : table.rows) {
      auto parsed = geom::ReadWkt(wkt);
      if (!parsed.ok()) {
        return Status::InvalidArgument("unencodable row '" + wkt +
                                       "': " + parsed.status().message());
      }
      PutBlob(&out, geom::WriteWkb(*parsed.value()));
    }
  }

  PutU8(&out, record.has_query ? 1 : 0);
  if (record.has_query) {
    PutString(&out, record.query.table1);
    PutString(&out, record.query.table2);
    PutString(&out, record.query.predicate);
    PutU8(&out, static_cast<uint8_t>(record.query.extra));
    PutF64(&out, record.query.distance);
    PutString(&out, record.query.pattern);
  }

  const algo::AffineTransform& t = record.transform;
  for (double v : {t.a11(), t.a12(), t.a21(), t.a22(), t.b1(), t.b2()}) {
    PutF64(&out, v);
  }
  // Derived, not copied: the oracle field is authoritative and the legacy
  // flag must never disagree with it on disk.
  PutU8(&out,
        record.oracle == fuzz::OracleKind::kCanonicalOnly ? 1 : 0);

  PutU32(&out, static_cast<uint32_t>(record.sites.size()));
  for (uint64_t key : record.sites) PutU64(&out, key);
  PutU32(&out, static_cast<uint32_t>(record.fault_ids.size()));
  for (uint32_t id : record.fault_ids) PutU32(&out, id);
  PutU8(&out, static_cast<uint8_t>(record.oracle));
  PutU8(&out, static_cast<uint8_t>(record.diff_secondary));
  return out;
}

Result<TestCaseRecord> TestCaseCodec::Decode(
    const std::vector<uint8_t>& data) {
  if (data.size() < 6 || std::memcmp(data.data(), kMagic, 4) != 0) {
    return Status::InvalidArgument("not a test-case record (bad magic)");
  }
  Reader r(data);
  uint8_t skip;
  for (int i = 0; i < 4; ++i) {
    if (!r.U8(&skip)) return Truncated();  // magic, validated above
  }
  uint16_t version;
  if (!r.U16(&version)) return Truncated();
  if (version < 1 || version > kVersion) {
    return Status::InvalidArgument("unsupported record version " +
                                   std::to_string(version));
  }

  TestCaseRecord rec;
  uint8_t kind, dialect, with_index, has_query, canonical_only;
  if (!r.U8(&kind) || !r.U8(&dialect) || !r.U64(&rec.seed) ||
      !r.U64(&rec.iteration) || !r.U8(&with_index)) {
    return Truncated();
  }
  if (kind > static_cast<uint8_t>(RecordKind::kReproducer) ||
      dialect >= engine::kNumDialects) {
    return Status::InvalidArgument("record has invalid kind or dialect");
  }
  rec.kind = static_cast<RecordKind>(kind);
  rec.dialect = static_cast<engine::Dialect>(dialect);
  rec.sdb.with_index = with_index != 0;

  uint32_t ntables;
  if (!r.U32(&ntables)) return Truncated();
  for (uint32_t t = 0; t < ntables; ++t) {
    fuzz::TableSpec table;
    uint32_t nrows;
    if (!r.String(&table.name) || !r.U32(&nrows)) return Truncated();
    for (uint32_t row = 0; row < nrows; ++row) {
      std::vector<uint8_t> wkb;
      if (!r.Blob(&wkb)) return Truncated();
      auto parsed = geom::ReadWkb(wkb);
      if (!parsed.ok()) return parsed.status();
      table.rows.push_back(geom::WriteWkt(*parsed.value()));
    }
    rec.sdb.tables.push_back(std::move(table));
  }

  if (!r.U8(&has_query)) return Truncated();
  rec.has_query = has_query != 0;
  if (rec.has_query) {
    uint8_t extra;
    if (!r.String(&rec.query.table1) || !r.String(&rec.query.table2) ||
        !r.String(&rec.query.predicate) || !r.U8(&extra) ||
        !r.F64(&rec.query.distance) || !r.String(&rec.query.pattern)) {
      return Truncated();
    }
    if (extra > static_cast<uint8_t>(engine::PredicateExtra::kPattern)) {
      return Status::InvalidArgument("record has invalid predicate extra");
    }
    rec.query.extra = static_cast<engine::PredicateExtra>(extra);
  }

  double m[6];
  for (double& v : m) {
    if (!r.F64(&v)) return Truncated();
  }
  rec.transform = algo::AffineTransform(m[0], m[1], m[2], m[3], m[4], m[5]);
  if (!r.U8(&canonical_only)) return Truncated();
  rec.canonical_only = canonical_only != 0;

  uint32_t nsites;
  if (!r.U32(&nsites)) return Truncated();
  for (uint32_t i = 0; i < nsites; ++i) {
    uint64_t key;
    if (!r.U64(&key)) return Truncated();
    rec.sites.push_back(key);
  }
  uint32_t nfaults;
  if (!r.U32(&nfaults)) return Truncated();
  for (uint32_t i = 0; i < nfaults; ++i) {
    uint32_t id;
    if (!r.U32(&id)) return Truncated();
    if (id >= static_cast<uint32_t>(faults::FaultId::kNumFaults)) {
      return Status::InvalidArgument("record has unknown fault id " +
                                     std::to_string(id));
    }
    rec.fault_ids.push_back(id);
  }
  if (version >= 2) {
    uint8_t oracle, secondary;
    if (!r.U8(&oracle) || !r.U8(&secondary)) return Truncated();
    if (oracle >= fuzz::kNumOracleKinds || secondary >= engine::kNumDialects) {
      return Status::InvalidArgument(
          "record has invalid oracle kind or secondary dialect");
    }
    rec.oracle = static_cast<fuzz::OracleKind>(oracle);
    rec.diff_secondary = static_cast<engine::Dialect>(secondary);
    rec.canonical_only = rec.oracle == fuzz::OracleKind::kCanonicalOnly;
  } else {
    // v1: the canonicalization flag is all the oracle identity there was.
    rec.oracle = rec.canonical_only ? fuzz::OracleKind::kCanonicalOnly
                                    : fuzz::OracleKind::kAei;
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after test-case record");
  }
  return rec;
}

uint64_t TestCaseCodec::SiteSignature(const std::vector<uint64_t>& sites) {
  // Order-independent would hide permutations, but sites arrive sorted
  // (TakeTrace sorts); splitmix-style mixing over the sequence gives a
  // well-distributed signature either way.
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ (sites.size() * 0xff51afd7ed558ccdULL);
  for (uint64_t s : sites) {
    uint64_t z = h + s + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    h = z ^ (z >> 31);
  }
  return h;
}

}  // namespace spatter::corpus
