// Equivalent-expression transformations (EET, after Jiang et al. OSDI'24):
// semantics-preserving rewrites of a COUNT(*)-join condition. Each variant
// must return exactly the base count on a correct engine, so any divergence
// is a logic bug in a single engine — no reference implementation needed.
//
// Soundness under SQL's three-valued logic is by construction:
//   - AND-tautology  `P AND G`  requires a guard G that is TRUE whenever the
//     row's geometries coerce (ST_IsEmpty and `~=` self-compare are total on
//     coerced geometries, so G can never demote a TRUE P).
//   - OR-contradiction `P OR (C AND NOT C)` is sound for ANY guard C: the
//     parenthesized term is always FALSE or UNKNOWN, and `TRUE OR x`,
//     `FALSE OR {FALSE,UNKNOWN}`, `UNKNOWN OR {FALSE,UNKNOWN}` all preserve
//     whether the row pair is counted (only TRUE counts).
#ifndef SPATTER_EET_TRANSFORM_H_
#define SPATTER_EET_TRANSFORM_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/dialect.h"
#include "sql/ast.h"

namespace spatter::eet {

/// One equivalence-preserving rewrite. Order is the deterministic variant
/// order the oracle walks; append only.
enum class TransformId : uint8_t {
  kDoubleNegation = 0,     ///< P -> NOT (NOT P)
  kEmptyTautology,         ///< P AND (IsEmpty(g1) OR NOT IsEmpty(g1))
  kSelfCompareGuard,       ///< P AND (g1 ~= g1)
  kHullContradiction,      ///< P OR (C AND NOT C),
                           ///<   C = ST_Intersects(g1, ST_ConvexHull(g1))
  kDistanceContradiction,  ///< P OR (C AND NOT C),
                           ///<   C = ST_DWithin(g1, g2, D) with data-aware D
  kFilterPushdown,         ///< FROM (SELECT * FROM t1 WHERE tautology) JOIN
  kNumTransforms,
};

inline constexpr int kNumEetTransforms =
    static_cast<int>(TransformId::kNumTransforms);

/// Stable identifier string ("double_negation", ...). Used in discrepancy
/// detail lines so reports name the variant that diverged.
const char* TransformName(TransformId id);

/// True when the dialect can express the rewrite: kSelfCompareGuard needs
/// the `~=` operator, kDistanceContradiction needs ST_DWithin; the rest use
/// functions available in every dialect.
bool TransformAppliesTo(TransformId id, engine::Dialect dialect);

/// Rewrites `base` (which must be kSelectCountJoin with a condition) into
/// the equivalent variant. `distance_bound` parameterizes
/// kDistanceContradiction (any value is sound; a data-aware bound makes the
/// guard exercise both truth values). Returns nullptr when the statement
/// shape does not apply.
sql::StatementPtr ApplyTransform(TransformId id, const sql::Statement& base,
                                 double distance_bound);

/// Data-aware distance bound for kDistanceContradiction: one more than the
/// largest pairwise algo::MinDistance between the two tables' WKT rows, so
/// ST_DWithin(g1, g2, D) is TRUE for every comparable pair while staying a
/// pure function of the test case (deterministic across factorizations).
double DistanceBoundFor(const std::vector<std::string>& rows1,
                        const std::vector<std::string>& rows2);

}  // namespace spatter::eet

#endif  // SPATTER_EET_TRANSFORM_H_
