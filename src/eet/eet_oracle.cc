#include "eet/eet_oracle.h"

#include <string>

#include "common/coverage.h"
#include "eet/transform.h"
#include "fuzz/oracles.h"
#include "obs/metrics.h"
#include "sql/parser.h"

namespace spatter::eet {

namespace {

// Data-aware ST_DWithin bound for the distance-contradiction variant,
// computed from the raw WKT rows of the two joined tables. Any value is
// sound (the guard only appears inside `C AND NOT C`); this one makes the
// guard TRUE on every comparable pair so both truth values get exercised.
double BoundFor(const fuzz::DatabaseSpec& sdb, const fuzz::QuerySpec& query) {
  const std::vector<std::string>* rows1 = nullptr;
  const std::vector<std::string>* rows2 = nullptr;
  for (const auto& table : sdb.tables) {
    if (table.name == query.table1) rows1 = &table.rows;
    if (table.name == query.table2) rows2 = &table.rows;
  }
  static const std::vector<std::string> kEmpty;
  return DistanceBoundFor(rows1 ? *rows1 : kEmpty, rows2 ? *rows2 : kEmpty);
}

}  // namespace

fuzz::OracleOutcome EetOracle::Check(engine::Engine* engine,
                                     const fuzz::DatabaseSpec& sdb1,
                                     const fuzz::QuerySpec& query,
                                     const fuzz::OracleCtx& ctx) {
  SPATTER_COV("oracle", "eet_check");
  fuzz::OracleOutcome out;
  engine->fault_state().ClearHits();

  if (!fuzz::LoadDatabase(engine, sdb1, nullptr).ok()) {
    out.applicable = false;
    return out;
  }
  auto parsed = sql::ParseStatement(query.ToSql());
  if (!parsed.ok()) {
    out.applicable = false;
    return out;
  }
  const sql::Statement& stmt = *parsed.value();

  auto base = engine->Execute(stmt);
  if (!base.ok()) {
    if (base.status().code() == StatusCode::kCrash) {
      out.crash = true;
      out.detail = base.status().ToString();
      out.fault_hits = engine->fault_state().TakeHits();
    } else {
      out.applicable = false;
    }
    return out;
  }
  const int64_t base_count = base.value().count;

  const double distance_bound = BoundFor(sdb1, query);
  for (int j = 0; j < kNumEetTransforms; ++j) {
    const auto id = static_cast<TransformId>(j);
    if (!TransformAppliesTo(id, engine->dialect())) continue;
    // Budget sampling over the variant loop: a pure function of the global
    // query ordinal and the variant index, so every shard of any P x J
    // factorization makes the same decision, and unbudgeted replay or
    // reduction (budget 0) re-runs every variant.
    if (budget_ >= 2 &&
        (ctx.query_ordinal + static_cast<uint64_t>(j)) % budget_ != 0) {
      obs::MetricsRegistry::Instance()
          .GetCounter("oracle.eet.variant_budget_skipped")
          ->Add();
      continue;
    }
    sql::StatementPtr variant = ApplyTransform(id, stmt, distance_bound);
    if (!variant) continue;
    auto r = engine->Execute(*variant);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kCrash) {
        out.crash = true;
        out.detail = std::string(TransformName(id)) + ": " +
                     r.status().ToString();
        out.fault_hits = engine->fault_state().TakeHits();
        return out;
      }
      // A rewrite can surface a capability the dialect lacks only at
      // evaluation time; skipping keeps the oracle free of false alarms.
      continue;
    }
    if (r.value().count != base_count) {
      out.mismatch = true;
      out.detail = std::string(TransformName(id)) + ": base {" +
                   std::to_string(base_count) + "} vs variant {" +
                   std::to_string(r.value().count) + "}";
      SPATTER_COV("oracle", "eet_mismatch");
      break;
    }
  }
  out.fault_hits = engine->fault_state().TakeHits();
  return out;
}

}  // namespace spatter::eet
