#include "eet/transform.h"

#include <optional>

#include "algo/distance.h"
#include "engine/functions.h"
#include "geom/wkt_reader.h"

namespace spatter::eet {

namespace {

using sql::Expr;
using sql::ExprPtr;

// First column reference qualified by `table` anywhere in the condition —
// the generated query shape is func(t1.g, t2.g) or t1.g ~= t2.g, but
// walking the tree keeps the rewrites correct for hand-written conditions
// too.
const Expr* FindColumnRef(const Expr& e, const std::string& table) {
  if (e.kind == Expr::Kind::kColumnRef && e.table == table) return &e;
  for (const auto& arg : e.args) {
    if (const Expr* hit = FindColumnRef(*arg, table)) return hit;
  }
  return nullptr;
}

ExprPtr ColumnFor(const sql::Statement& base, const std::string& table) {
  if (base.condition) {
    if (const Expr* ref = FindColumnRef(*base.condition, table)) {
      return ref->Clone();
    }
  }
  return Expr::Column(table, "g");
}

// G = IsEmpty(g) OR NOT IsEmpty(g): total on coerced geometries, so it is a
// true tautology (never UNKNOWN) wherever the wrapped predicate evaluated.
ExprPtr EmptyTautology(const Expr& column) {
  ExprPtr lhs = Expr::Func("ST_IsEmpty", {});
  lhs->args.push_back(column.Clone());
  ExprPtr rhs = Expr::Func("ST_IsEmpty", {});
  rhs->args.push_back(column.Clone());
  return Expr::MakeOr(std::move(lhs), Expr::MakeNot(std::move(rhs)));
}

// C AND NOT C: always FALSE or UNKNOWN, so `P OR (C AND NOT C)` preserves
// the counted set for any guard C.
ExprPtr Contradiction(ExprPtr c) {
  ExprPtr negated = Expr::MakeNot(c->Clone());
  return Expr::MakeAnd(std::move(c), std::move(negated));
}

}  // namespace

const char* TransformName(TransformId id) {
  switch (id) {
    case TransformId::kDoubleNegation:
      return "double_negation";
    case TransformId::kEmptyTautology:
      return "empty_tautology";
    case TransformId::kSelfCompareGuard:
      return "self_compare_guard";
    case TransformId::kHullContradiction:
      return "hull_contradiction";
    case TransformId::kDistanceContradiction:
      return "distance_contradiction";
    case TransformId::kFilterPushdown:
      return "filter_pushdown";
    case TransformId::kNumTransforms:
      break;
  }
  return "unknown";
}

bool TransformAppliesTo(TransformId id, engine::Dialect dialect) {
  switch (id) {
    case TransformId::kSelfCompareGuard:
      return engine::GetDialectTraits(dialect).has_same_as_operator;
    case TransformId::kDistanceContradiction:
      return engine::ResolveFunction("ST_DWithin", dialect).ok();
    default:
      return true;
  }
}

sql::StatementPtr ApplyTransform(TransformId id, const sql::Statement& base,
                                 double distance_bound) {
  if (base.kind != sql::Statement::Kind::kSelectCountJoin || !base.condition) {
    return nullptr;
  }
  auto out = std::make_unique<sql::Statement>();
  out->kind = base.kind;
  out->table = base.table;
  out->table2 = base.table2;
  out->condition = base.condition->Clone();

  switch (id) {
    case TransformId::kDoubleNegation:
      out->condition = Expr::MakeNot(Expr::MakeNot(std::move(out->condition)));
      break;
    case TransformId::kEmptyTautology: {
      ExprPtr g1 = ColumnFor(base, base.table);
      out->condition =
          Expr::MakeAnd(std::move(out->condition), EmptyTautology(*g1));
      break;
    }
    case TransformId::kSelfCompareGuard: {
      ExprPtr g1 = ColumnFor(base, base.table);
      ExprPtr g1_copy = g1->Clone();
      out->condition = Expr::MakeAnd(
          std::move(out->condition),
          Expr::MakeSameAs(std::move(g1_copy), std::move(g1)));
      break;
    }
    case TransformId::kHullContradiction: {
      ExprPtr g1 = ColumnFor(base, base.table);
      ExprPtr hull = Expr::Func("ST_ConvexHull", {});
      hull->args.push_back(g1->Clone());
      ExprPtr guard = Expr::Func("ST_Intersects", {});
      guard->args.push_back(std::move(g1));
      guard->args.push_back(std::move(hull));
      out->condition = Expr::MakeOr(std::move(out->condition),
                                    Contradiction(std::move(guard)));
      break;
    }
    case TransformId::kDistanceContradiction: {
      ExprPtr guard = Expr::Func("ST_DWithin", {});
      guard->args.push_back(ColumnFor(base, base.table));
      guard->args.push_back(ColumnFor(base, base.table2));
      guard->args.push_back(Expr::Number(distance_bound));
      out->condition = Expr::MakeOr(std::move(out->condition),
                                    Contradiction(std::move(guard)));
      break;
    }
    case TransformId::kFilterPushdown: {
      // The condition is untouched; the tautology rides as a derived-table
      // row filter, exercising the pre-join filtering path instead of the
      // pair-condition evaluator.
      ExprPtr g1 = ColumnFor(base, base.table);
      out->filter1 = EmptyTautology(*g1);
      break;
    }
    case TransformId::kNumTransforms:
      return nullptr;
  }
  return out;
}

double DistanceBoundFor(const std::vector<std::string>& rows1,
                        const std::vector<std::string>& rows2) {
  double max_min = 0.0;
  std::vector<geom::GeomPtr> parsed2;
  for (const auto& wkt : rows2) {
    auto g = geom::ReadWkt(wkt);
    if (g.ok()) parsed2.push_back(g.Take());
  }
  for (const auto& wkt : rows1) {
    auto g1 = geom::ReadWkt(wkt);
    if (!g1.ok()) continue;
    for (const auto& g2 : parsed2) {
      const std::optional<double> d = algo::MinDistance(*g1.value(), *g2);
      if (d && *d > max_min) max_min = *d;
    }
  }
  return max_min + 1.0;
}

}  // namespace spatter::eet
