// EET oracle: runs each equivalence-preserving variant of a query through
// the same engine and reports any count divergence as a logic bug. Sits in
// src/eet/ with the transformation library; the object file is compiled
// into the fuzz tier (it consumes fuzz::Oracle and fuzz::LoadDatabase).
#ifndef SPATTER_EET_EET_ORACLE_H_
#define SPATTER_EET_EET_ORACLE_H_

#include <cstdint>

#include "fuzz/oracle_suite.h"

namespace spatter::eet {

/// Equivalent-expression transformation oracle. Deterministic: variant
/// choice under a budget is a pure function of the query's global ordinal
/// and the variant index — never the campaign RNG — so budgeted campaigns
/// keep the processes x jobs factorization invariance, and reduction /
/// replay (which construct an OracleCtx with no budget) re-run every
/// variant and always reproduce the detecting one.
class EetOracle : public fuzz::Oracle {
 public:
  /// `budget` mirrors the suite's /N sampling, applied to the per-query
  /// variant loop: variant j runs iff (query_ordinal + j) % budget == 0.
  /// 0 or 1 means every variant on every query.
  explicit EetOracle(uint64_t budget = 0) : budget_(budget) {}

  const char* Name() const override { return "eet"; }
  fuzz::OracleKind Kind() const override { return fuzz::OracleKind::kEet; }
  /// The budget samples variants, not whole checks — the suite's generic
  /// every-Nth-query skip must not also apply.
  bool SamplesOwnBudget() const override { return true; }
  fuzz::OracleOutcome Check(engine::Engine* engine,
                            const fuzz::DatabaseSpec& sdb1,
                            const fuzz::QuerySpec& query,
                            const fuzz::OracleCtx& ctx) override;

 private:
  uint64_t budget_;
};

}  // namespace spatter::eet

#endif  // SPATTER_EET_EET_ORACLE_H_
