#include "algo/noding.h"

#include <algorithm>
#include <cmath>

#include "geom/envelope.h"
#include "geom/predicates.h"

namespace spatter::algo {

using geom::Coord;

namespace {

// Merges nearby coordinates onto canonical node positions.
class NodeMerger {
 public:
  explicit NodeMerger(double eps) : eps_(eps) {}

  /// Returns the canonical coordinate for `c`, registering it if new.
  Coord Canonical(const Coord& c) {
    for (const auto& n : nodes_) {
      if (std::fabs(n.x - c.x) <= eps_ && std::fabs(n.y - c.y) <= eps_) {
        return n;
      }
    }
    nodes_.push_back(c);
    return c;
  }

  const std::vector<Coord>& nodes() const { return nodes_; }

 private:
  double eps_;
  std::vector<Coord> nodes_;
};

// Scalar position of collinear point p along segment [a, b].
double ParamOf(const Coord& p, const Coord& a, const Coord& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  if (std::fabs(dx) >= std::fabs(dy)) {
    return dx == 0.0 ? 0.0 : (p.x - a.x) / dx;
  }
  return dy == 0.0 ? 0.0 : (p.y - a.y) / dy;
}

}  // namespace

NodingResult NodeSegments(const std::vector<TaggedSegment>& segments,
                          double eps) {
  const size_t n = segments.size();
  // Cut points per segment (beyond the endpoints).
  std::vector<std::vector<Coord>> cuts(n);

  std::vector<geom::Envelope> boxes;
  boxes.reserve(n);
  for (const auto& s : segments) {
    geom::Envelope e(s.a);
    e.ExpandToInclude(s.b);
    e.ExpandBy(eps);
    boxes.push_back(e);
  }

  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (!boxes[i].Intersects(boxes[j])) continue;
      const auto isect = geom::IntersectSegments(
          segments[i].a, segments[i].b, segments[j].a, segments[j].b, eps);
      switch (isect.kind) {
        case geom::SegSegIntersection::Kind::kNone:
          break;
        case geom::SegSegIntersection::Kind::kPoint:
          cuts[i].push_back(isect.p0);
          cuts[j].push_back(isect.p0);
          break;
        case geom::SegSegIntersection::Kind::kOverlap:
          cuts[i].push_back(isect.p0);
          cuts[i].push_back(isect.p1);
          cuts[j].push_back(isect.p0);
          cuts[j].push_back(isect.p1);
          break;
      }
    }
  }

  NodeMerger merger(eps);
  NodingResult out;
  for (size_t i = 0; i < n; ++i) {
    const Coord a = merger.Canonical(segments[i].a);
    const Coord b = merger.Canonical(segments[i].b);
    // Sort cut points along the segment and split.
    struct Cut {
      double t;
      Coord p;
    };
    std::vector<Cut> ordered;
    ordered.push_back({0.0, a});
    ordered.push_back({1.0, b});
    for (const auto& c : cuts[i]) {
      const Coord canon = merger.Canonical(c);
      ordered.push_back({ParamOf(canon, segments[i].a, segments[i].b), canon});
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const Cut& x, const Cut& y) { return x.t < y.t; });
    for (size_t k = 0; k + 1 < ordered.size(); ++k) {
      const Coord& p = ordered[k].p;
      const Coord& q = ordered[k + 1].p;
      if (p == q) continue;  // degenerate split.
      out.edges.push_back(NodedEdge{p, q, segments[i].src, i});
    }
  }
  out.nodes = merger.nodes();
  return out;
}

}  // namespace spatter::algo
