#include "algo/distance.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "algo/ring_ops.h"
#include "geom/predicates.h"

namespace spatter::algo {

using geom::Coord;
using geom::Geometry;
using geom::GeomType;

double PointSegmentDistance(const Coord& p, const Coord& a, const Coord& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  if (len2 == 0.0) return geom::DistanceBetween(p, a);
  double t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
  t = std::clamp(t, 0.0, 1.0);
  const Coord proj{a.x + t * dx, a.y + t * dy};
  return geom::DistanceBetween(p, proj);
}

double SegmentSegmentDistance(const Coord& a, const Coord& b, const Coord& c,
                              const Coord& d) {
  const auto isect = geom::IntersectSegments(a, b, c, d);
  if (isect.kind != geom::SegSegIntersection::Kind::kNone) return 0.0;
  return std::min({PointSegmentDistance(a, c, d), PointSegmentDistance(b, c, d),
                   PointSegmentDistance(c, a, b),
                   PointSegmentDistance(d, a, b)});
}

namespace {

// Collects the segments of a basic geometry (line segments and ring edges).
void CollectSegments(const Geometry& basic,
                     std::vector<std::pair<Coord, Coord>>* segs) {
  if (basic.type() == GeomType::kLineString) {
    const auto& pts = geom::AsLineString(basic).points();
    for (size_t i = 0; i + 1 < pts.size(); ++i) {
      segs->emplace_back(pts[i], pts[i + 1]);
    }
  } else if (basic.type() == GeomType::kPolygon) {
    for (const auto& ring : geom::AsPolygon(basic).rings()) {
      for (size_t i = 0; i + 1 < ring.size(); ++i) {
        segs->emplace_back(ring[i], ring[i + 1]);
      }
      if (ring.size() >= 2 && ring.front() != ring.back()) {
        segs->emplace_back(ring.back(), ring.front());
      }
    }
  }
}

void CollectVertices(const Geometry& basic, std::vector<Coord>* pts) {
  if (basic.type() == GeomType::kPoint) {
    if (!basic.IsEmpty()) pts->push_back(*geom::AsPoint(basic).coord());
  } else if (basic.type() == GeomType::kLineString) {
    const auto& line = geom::AsLineString(basic).points();
    pts->insert(pts->end(), line.begin(), line.end());
  } else if (basic.type() == GeomType::kPolygon) {
    for (const auto& ring : geom::AsPolygon(basic).rings()) {
      pts->insert(pts->end(), ring.begin(), ring.end());
    }
  }
}

// Distance from one basic geometry to another.
double BasicDistance(const Geometry& a, const Geometry& b) {
  // Containment shortcuts: a vertex of one inside a polygon of the other.
  if (a.type() == GeomType::kPolygon && !b.IsEmpty()) {
    std::vector<Coord> pts;
    CollectVertices(b, &pts);
    for (const auto& p : pts) {
      if (LocateInPolygon(p, geom::AsPolygon(a)) != RingLocation::kExterior) {
        return 0.0;
      }
    }
  }
  if (b.type() == GeomType::kPolygon && !a.IsEmpty()) {
    std::vector<Coord> pts;
    CollectVertices(a, &pts);
    for (const auto& p : pts) {
      if (LocateInPolygon(p, geom::AsPolygon(b)) != RingLocation::kExterior) {
        return 0.0;
      }
    }
  }

  std::vector<std::pair<Coord, Coord>> segs_a;
  std::vector<std::pair<Coord, Coord>> segs_b;
  std::vector<Coord> pts_a;
  std::vector<Coord> pts_b;
  CollectSegments(a, &segs_a);
  CollectSegments(b, &segs_b);
  CollectVertices(a, &pts_a);
  CollectVertices(b, &pts_b);

  double best = std::numeric_limits<double>::infinity();
  if (!segs_a.empty() && !segs_b.empty()) {
    for (const auto& [p, q] : segs_a) {
      for (const auto& [r, s] : segs_b) {
        best = std::min(best, SegmentSegmentDistance(p, q, r, s));
        if (best == 0.0) return 0.0;
      }
    }
  } else if (!segs_a.empty()) {
    for (const auto& p : pts_b) {
      for (const auto& [r, s] : segs_a) {
        best = std::min(best, PointSegmentDistance(p, r, s));
      }
    }
  } else if (!segs_b.empty()) {
    for (const auto& p : pts_a) {
      for (const auto& [r, s] : segs_b) {
        best = std::min(best, PointSegmentDistance(p, r, s));
      }
    }
  } else {
    for (const auto& p : pts_a) {
      for (const auto& q : pts_b) {
        best = std::min(best, geom::DistanceBetween(p, q));
      }
    }
  }
  return best;
}

}  // namespace

std::optional<double> MinDistance(const Geometry& a, const Geometry& b) {
  std::vector<const Geometry*> parts_a;
  std::vector<const Geometry*> parts_b;
  geom::ForEachBasic(a, [&](const Geometry& g) {
    if (!g.IsEmpty()) parts_a.push_back(&g);
  });
  geom::ForEachBasic(b, [&](const Geometry& g) {
    if (!g.IsEmpty()) parts_b.push_back(&g);
  });
  if (parts_a.empty() || parts_b.empty()) return std::nullopt;
  double best = std::numeric_limits<double>::infinity();
  for (const Geometry* ga : parts_a) {
    for (const Geometry* gb : parts_b) {
      best = std::min(best, BasicDistance(*ga, *gb));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

std::optional<double> MaxDistance(const Geometry& a, const Geometry& b) {
  std::vector<Coord> pts_a;
  geom::ForEachBasic(a, [&](const Geometry& g) { CollectVertices(g, &pts_a); });
  if (pts_a.empty() || b.IsEmpty()) return std::nullopt;
  double worst = 0.0;
  for (const auto& p : pts_a) {
    geom::Point probe(p);
    const auto d = MinDistance(probe, b);
    if (!d) return std::nullopt;
    worst = std::max(worst, *d);
  }
  return worst;
}

}  // namespace spatter::algo
