// Convex hull (Andrew's monotone chain).
#ifndef SPATTER_ALGO_CONVEX_HULL_H_
#define SPATTER_ALGO_CONVEX_HULL_H_

#include "geom/geometry.h"

namespace spatter::algo {

/// Convex hull of all coordinates of `g`, ST_ConvexHull-style:
/// returns a POLYGON for >= 3 non-collinear points, a LINESTRING for
/// collinear points, a POINT for a single point, and
/// GEOMETRYCOLLECTION EMPTY for an empty input.
geom::GeomPtr ConvexHull(const geom::Geometry& g);

}  // namespace spatter::algo

#endif  // SPATTER_ALGO_CONVEX_HULL_H_
