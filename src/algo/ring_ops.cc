#include "algo/ring_ops.h"

#include <algorithm>
#include <cmath>

#include "geom/predicates.h"

namespace spatter::algo {

using geom::Coord;
using geom::Geometry;
using geom::OnSegment;
using geom::Polygon;

double SignedRingArea(const std::vector<Coord>& ring) {
  if (ring.size() < 3) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i + 1 < ring.size(); ++i) {
    sum += ring[i].x * ring[i + 1].y - ring[i + 1].x * ring[i].y;
  }
  // Close implicitly if the ring is not closed.
  if (ring.front() != ring.back()) {
    sum += ring.back().x * ring.front().y - ring.front().x * ring.back().y;
  }
  return sum / 2.0;
}

bool IsCcw(const std::vector<Coord>& ring) {
  return SignedRingArea(ring) > 0.0;
}

void ReverseRing(std::vector<Coord>* ring) {
  std::reverse(ring->begin(), ring->end());
}

RingLocation LocateInRing(const Coord& p, const std::vector<Coord>& ring,
                          double eps) {
  if (ring.size() < 2) return RingLocation::kExterior;
  bool inside = false;
  for (size_t i = 0; i + 1 < ring.size(); ++i) {
    const Coord& a = ring[i];
    const Coord& b = ring[i + 1];
    if (OnSegment(p, a, b, eps)) return RingLocation::kBoundary;
    // Ray cast toward +x; half-open rule on y avoids double counting at
    // vertices.
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (x_cross > p.x) inside = !inside;
    }
  }
  // Closing edge when the sequence is not explicitly closed.
  if (ring.front() != ring.back()) {
    const Coord& a = ring.back();
    const Coord& b = ring.front();
    if (OnSegment(p, a, b, eps)) return RingLocation::kBoundary;
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (x_cross > p.x) inside = !inside;
    }
  }
  return inside ? RingLocation::kInterior : RingLocation::kExterior;
}

RingLocation LocateInPolygon(const Coord& p, const Polygon& poly, double eps) {
  if (poly.IsEmpty()) return RingLocation::kExterior;
  // Even-odd over all rings: boundary if on any ring; interior if inside an
  // odd number of rings. This matches the even-odd fill rule and degrades
  // gracefully for invalid polygons.
  int parity = 0;
  for (const auto& ring : poly.rings()) {
    const RingLocation loc = LocateInRing(p, ring, eps);
    if (loc == RingLocation::kBoundary) return RingLocation::kBoundary;
    if (loc == RingLocation::kInterior) parity ^= 1;
  }
  return parity ? RingLocation::kInterior : RingLocation::kExterior;
}

double PolygonArea(const Polygon& poly) {
  if (poly.IsEmpty()) return 0.0;
  double area = std::fabs(SignedRingArea(poly.Shell()));
  for (size_t i = 1; i < poly.NumRings(); ++i) {
    area -= std::fabs(SignedRingArea(poly.rings()[i]));
  }
  return std::max(area, 0.0);
}

double GeometryArea(const Geometry& g) {
  double area = 0.0;
  geom::ForEachBasic(g, [&area](const Geometry& basic) {
    if (basic.type() == geom::GeomType::kPolygon) {
      area += PolygonArea(geom::AsPolygon(basic));
    }
  });
  return area;
}

double GeometryLength(const Geometry& g) {
  double len = 0.0;
  geom::ForEachBasic(g, [&len](const Geometry& basic) {
    if (basic.type() == geom::GeomType::kLineString) {
      const auto& pts = geom::AsLineString(basic).points();
      for (size_t i = 0; i + 1 < pts.size(); ++i) {
        len += geom::DistanceBetween(pts[i], pts[i + 1]);
      }
    }
  });
  return len;
}

std::optional<Coord> InteriorPointOfPolygon(const Polygon& poly) {
  if (poly.IsEmpty()) return std::nullopt;
  // Collect distinct vertex y values.
  std::vector<double> ys;
  for (const auto& ring : poly.rings()) {
    for (const auto& c : ring) ys.push_back(c.y);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
  if (ys.size() < 2) return std::nullopt;

  // Try scanlines between consecutive distinct vertex ys, widest spans
  // first; verify each candidate with the point-in-polygon test.
  for (size_t yi = 0; yi + 1 < ys.size(); ++yi) {
    const double y = (ys[yi] + ys[yi + 1]) / 2.0;
    // Gather x crossings of the scanline with every ring edge.
    std::vector<double> xs;
    for (const auto& ring : poly.rings()) {
      const size_t n = ring.size();
      for (size_t i = 0; i + 1 < n; ++i) {
        const Coord& a = ring[i];
        const Coord& b = ring[i + 1];
        if ((a.y > y) != (b.y > y)) {
          xs.push_back(a.x + (y - a.y) / (b.y - a.y) * (b.x - a.x));
        }
      }
      if (n >= 2 && ring.front() != ring.back()) {
        const Coord& a = ring.back();
        const Coord& b = ring.front();
        if ((a.y > y) != (b.y > y)) {
          xs.push_back(a.x + (y - a.y) / (b.y - a.y) * (b.x - a.x));
        }
      }
    }
    if (xs.size() < 2) continue;
    std::sort(xs.begin(), xs.end());
    // Candidate midpoints of alternating spans (even-odd: spans between
    // crossing 0-1, 2-3, ... are inside).
    for (size_t i = 0; i + 1 < xs.size(); i += 2) {
      if (xs[i + 1] - xs[i] <= 0.0) continue;
      const Coord candidate{(xs[i] + xs[i + 1]) / 2.0, y};
      if (LocateInPolygon(candidate, poly, geom::kDerivedEps) ==
          RingLocation::kInterior) {
        return candidate;
      }
    }
  }
  return std::nullopt;
}

std::optional<Coord> Centroid(const Geometry& g) {
  if (g.IsEmpty()) return std::nullopt;
  const int dim = g.Dimension();
  double wsum = 0.0;
  double cx = 0.0;
  double cy = 0.0;
  geom::ForEachBasic(g, [&](const Geometry& basic) {
    if (basic.IsEmpty()) return;
    if (dim == 2 && basic.type() == geom::GeomType::kPolygon) {
      const auto& poly = geom::AsPolygon(basic);
      for (size_t r = 0; r < poly.NumRings(); ++r) {
        const auto& ring = poly.rings()[r];
        double a_sum = 0.0;
        double x_sum = 0.0;
        double y_sum = 0.0;
        for (size_t i = 0; i + 1 < ring.size(); ++i) {
          const double cross =
              ring[i].x * ring[i + 1].y - ring[i + 1].x * ring[i].y;
          a_sum += cross;
          x_sum += (ring[i].x + ring[i + 1].x) * cross;
          y_sum += (ring[i].y + ring[i + 1].y) * cross;
        }
        double sign = (r == 0) ? 1.0 : -1.0;
        // Normalize ring orientation so holes subtract.
        if (a_sum < 0) {
          a_sum = -a_sum;
          x_sum = -x_sum;
          y_sum = -y_sum;
        }
        wsum += sign * a_sum / 2.0;
        cx += sign * x_sum / 6.0;
        cy += sign * y_sum / 6.0;
      }
    } else if (dim == 1 && basic.type() == geom::GeomType::kLineString) {
      const auto& pts = geom::AsLineString(basic).points();
      for (size_t i = 0; i + 1 < pts.size(); ++i) {
        const double len = geom::DistanceBetween(pts[i], pts[i + 1]);
        const Coord mid = geom::Midpoint(pts[i], pts[i + 1]);
        wsum += len;
        cx += mid.x * len;
        cy += mid.y * len;
      }
    } else if (dim == 0 && basic.type() == geom::GeomType::kPoint) {
      const auto& c = *geom::AsPoint(basic).coord();
      wsum += 1.0;
      cx += c.x;
      cy += c.y;
    }
  });
  if (wsum == 0.0) return std::nullopt;
  return Coord{cx / wsum, cy / wsum};
}

}  // namespace spatter::algo
