// Distance computations: minimum distance between geometries (ST_Distance)
// and directed maximum distance (the ST_DFullyWithin support predicate).
#ifndef SPATTER_ALGO_DISTANCE_H_
#define SPATTER_ALGO_DISTANCE_H_

#include <optional>

#include "geom/geometry.h"

namespace spatter::algo {

/// Distance from point `p` to segment [a, b].
double PointSegmentDistance(const geom::Coord& p, const geom::Coord& a,
                            const geom::Coord& b);

/// Minimum distance between segments [a,b] and [c,d] (0 when intersecting).
double SegmentSegmentDistance(const geom::Coord& a, const geom::Coord& b,
                              const geom::Coord& c, const geom::Coord& d);

/// Minimum Euclidean distance between two geometries; 0 when they
/// intersect (a point inside a polygon has distance 0). EMPTY geometries
/// and EMPTY elements are skipped, matching the fixed PostGIS semantics of
/// the Listing 5 bug; returns nullopt when either side has no non-empty
/// component.
std::optional<double> MinDistance(const geom::Geometry& a,
                                  const geom::Geometry& b);

/// Directed maximum distance: max over the vertices of `a` of the minimum
/// distance to `b`. Exact for point/line `a` against convex `b`; a
/// documented approximation otherwise (DESIGN.md §4). nullopt when either
/// side is empty.
std::optional<double> MaxDistance(const geom::Geometry& a,
                                  const geom::Geometry& b);

}  // namespace spatter::algo

#endif  // SPATTER_ALGO_DISTANCE_H_
