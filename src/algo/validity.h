// Semantic validity checks (the ST_IsValid analogue). The random-shape
// strategy intentionally produces syntactically valid but semantically
// invalid geometries; dialects differ in how strictly they reject them,
// which is one source of the expected discrepancies that break differential
// testing (paper §5.2, Listing 4).
#ifndef SPATTER_ALGO_VALIDITY_H_
#define SPATTER_ALGO_VALIDITY_H_

#include "common/status.h"
#include "geom/geometry.h"

namespace spatter::algo {

/// Per-geometry validity (OGC rules, pragmatic subset):
///  - LINESTRING: >= 2 points when non-empty,
///  - POLYGON rings: closed, >= 4 points, no self-intersection beyond
///    adjacent-vertex sharing, holes inside the shell, rings may touch but
///    not cross,
///  - MULTIPOLYGON: element shells must not cross and no shell vertex may
///    lie strictly inside a sibling polygon,
///  - collections: every element valid.
/// Cross-element interaction rules for GEOMETRYCOLLECTION (e.g. PostGIS
/// rejecting intersecting elements in some operations) are dialect policy
/// and live in the engine, not here.
Status CheckValid(const geom::Geometry& g);

/// Convenience wrapper: true iff CheckValid returns OK.
bool IsValid(const geom::Geometry& g);

}  // namespace spatter::algo

#endif  // SPATTER_ALGO_VALIDITY_H_
