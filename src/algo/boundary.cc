#include "algo/boundary.h"

#include <map>
#include <vector>

namespace spatter::algo {

using geom::Coord;
using geom::Geometry;
using geom::GeomPtr;
using geom::GeomType;

namespace {

// Accumulates endpoint parity across line elements and ring lines from
// areal elements.
struct BoundaryAccumulator {
  std::map<Coord, int> endpoint_count;
  std::vector<std::vector<Coord>> rings;

  void Add(const Geometry& basic) {
    switch (basic.type()) {
      case GeomType::kPoint:
        break;  // points have empty boundary.
      case GeomType::kLineString: {
        const auto& line = geom::AsLineString(basic);
        if (line.NumPoints() < 2 || line.IsClosed()) break;
        endpoint_count[line.points().front()]++;
        endpoint_count[line.points().back()]++;
        break;
      }
      case GeomType::kPolygon: {
        for (const auto& ring : geom::AsPolygon(basic).rings()) {
          if (!ring.empty()) rings.push_back(ring);
        }
        break;
      }
      default:
        break;
    }
  }

  std::vector<Coord> Mod2Points() const {
    std::vector<Coord> out;
    for (const auto& [pt, count] : endpoint_count) {
      if (count % 2 == 1) out.push_back(pt);
    }
    return out;
  }
};

}  // namespace

GeomPtr Boundary(const Geometry& g) {
  BoundaryAccumulator acc;
  geom::ForEachBasic(g, [&acc](const Geometry& basic) { acc.Add(basic); });
  const std::vector<Coord> pts = acc.Mod2Points();

  const bool has_points = !pts.empty();
  const bool has_rings = !acc.rings.empty();

  if (!has_points && !has_rings) {
    // Empty boundary: match PostGIS result types by input dimension.
    switch (g.Dimension()) {
      case 1:
        return geom::MakeEmpty(GeomType::kMultiPoint);
      case 2:
        return geom::MakeEmpty(GeomType::kMultiLineString);
      default:
        return geom::MakeEmpty(GeomType::kGeometryCollection);
    }
  }

  std::vector<GeomPtr> point_elems;
  point_elems.reserve(pts.size());
  for (const auto& p : pts) point_elems.push_back(geom::MakePoint(p.x, p.y));

  std::vector<GeomPtr> line_elems;
  line_elems.reserve(acc.rings.size());
  for (auto& ring : acc.rings) {
    line_elems.push_back(geom::MakeLineString(ring));
  }

  if (has_points && has_rings) {
    std::vector<GeomPtr> all;
    for (auto& e : point_elems) all.push_back(std::move(e));
    for (auto& e : line_elems) all.push_back(std::move(e));
    return geom::MakeCollection(GeomType::kGeometryCollection, std::move(all));
  }
  if (has_points) {
    if (point_elems.size() == 1) return std::move(point_elems[0]);
    return geom::MakeCollection(GeomType::kMultiPoint,
                                std::move(point_elems));
  }
  if (line_elems.size() == 1) return std::move(line_elems[0]);
  return geom::MakeCollection(GeomType::kMultiLineString,
                              std::move(line_elems));
}

}  // namespace spatter::algo
