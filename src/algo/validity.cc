#include "algo/validity.h"

#include <string>
#include <vector>

#include "algo/ring_ops.h"
#include "geom/predicates.h"

namespace spatter::algo {

using geom::Coord;
using geom::Geometry;
using geom::GeomType;

namespace {

Status CheckRing(const std::vector<Coord>& ring, const std::string& what) {
  if (ring.size() < 4) {
    return Status::InvalidGeometry(what + " has fewer than 4 points");
  }
  if (ring.front() != ring.back()) {
    return Status::InvalidGeometry(what + " is not closed");
  }
  // Repeated interior vertices collapse segments; reject zero-length edges.
  for (size_t i = 0; i + 1 < ring.size(); ++i) {
    if (ring[i] == ring[i + 1]) {
      return Status::InvalidGeometry(what + " has a repeated point");
    }
  }
  // Self-intersection: non-adjacent segments must be disjoint; adjacent
  // segments may only share their common vertex.
  const size_t n = ring.size() - 1;  // number of edges
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const auto isect = geom::IntersectSegments(ring[i], ring[i + 1],
                                                 ring[j], ring[j + 1]);
      if (isect.kind == geom::SegSegIntersection::Kind::kNone) continue;
      const bool adjacent = (j == i + 1) || (i == 0 && j == n - 1);
      if (!adjacent) {
        return Status::InvalidGeometry(what + " self-intersects");
      }
      if (isect.kind == geom::SegSegIntersection::Kind::kOverlap) {
        return Status::InvalidGeometry(what + " has overlapping edges");
      }
      // Adjacent edges: the single shared vertex is the only legal touch.
      const Coord& shared = (j == i + 1) ? ring[j] : ring[0];
      if (isect.p0 != shared) {
        return Status::InvalidGeometry(what +
                                       " adjacent edges touch off-vertex");
      }
    }
  }
  return Status::OK();
}

Status CheckPolygon(const geom::Polygon& poly) {
  if (poly.IsEmpty()) return Status::OK();
  SPATTER_RETURN_NOT_OK(CheckRing(poly.Shell(), "polygon shell"));
  for (size_t h = 1; h < poly.NumRings(); ++h) {
    SPATTER_RETURN_NOT_OK(
        CheckRing(poly.rings()[h], "polygon hole " + std::to_string(h)));
    // Every hole vertex must be inside or on the shell.
    for (const auto& p : poly.rings()[h]) {
      if (LocateInRing(p, poly.Shell()) == RingLocation::kExterior) {
        return Status::InvalidGeometry("hole lies outside the shell");
      }
    }
    // Hole edges must not cross the shell (touching at points is legal).
    const auto& hole = poly.rings()[h];
    const auto& shell = poly.Shell();
    for (size_t i = 0; i + 1 < hole.size(); ++i) {
      for (size_t j = 0; j + 1 < shell.size(); ++j) {
        const auto isect = geom::IntersectSegments(hole[i], hole[i + 1],
                                                   shell[j], shell[j + 1]);
        if (isect.kind == geom::SegSegIntersection::Kind::kOverlap) {
          return Status::InvalidGeometry("hole overlaps the shell boundary");
        }
      }
    }
  }
  return Status::OK();
}

Status CheckMultiPolygon(const geom::GeometryCollection& mp) {
  for (size_t i = 0; i < mp.NumElements(); ++i) {
    for (size_t j = i + 1; j < mp.NumElements(); ++j) {
      const auto& pa = geom::AsPolygon(mp.ElementAt(i));
      const auto& pb = geom::AsPolygon(mp.ElementAt(j));
      if (pa.IsEmpty() || pb.IsEmpty()) continue;
      // Shell vertices of one strictly inside the other -> interiors
      // overlap.
      for (const auto& p : pa.Shell()) {
        if (LocateInPolygon(p, pb) == RingLocation::kInterior) {
          return Status::InvalidGeometry(
              "multipolygon elements overlap (vertex containment)");
        }
      }
      for (const auto& p : pb.Shell()) {
        if (LocateInPolygon(p, pa) == RingLocation::kInterior) {
          return Status::InvalidGeometry(
              "multipolygon elements overlap (vertex containment)");
        }
      }
      // Proper shell crossings.
      const auto& sa = pa.Shell();
      const auto& sb = pb.Shell();
      for (size_t x = 0; x + 1 < sa.size(); ++x) {
        for (size_t y = 0; y + 1 < sb.size(); ++y) {
          const auto isect =
              geom::IntersectSegments(sa[x], sa[x + 1], sb[y], sb[y + 1]);
          if (isect.kind == geom::SegSegIntersection::Kind::kOverlap) {
            return Status::InvalidGeometry(
                "multipolygon element boundaries overlap");
          }
          if (isect.kind == geom::SegSegIntersection::Kind::kPoint) {
            // Touch points are allowed only at vertices of both shells.
            const bool va = isect.p0 == sa[x] || isect.p0 == sa[x + 1];
            const bool vb = isect.p0 == sb[y] || isect.p0 == sb[y + 1];
            if (!va || !vb) {
              return Status::InvalidGeometry(
                  "multipolygon element boundaries cross");
            }
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status CheckValid(const Geometry& g) {
  switch (g.type()) {
    case GeomType::kPoint:
      return Status::OK();
    case GeomType::kLineString: {
      const auto& line = geom::AsLineString(g);
      if (!line.IsEmpty() && line.NumPoints() < 2) {
        return Status::InvalidGeometry("linestring has a single point");
      }
      return Status::OK();
    }
    case GeomType::kPolygon:
      return CheckPolygon(geom::AsPolygon(g));
    case GeomType::kMultiPolygon: {
      const auto& coll = geom::AsCollection(g);
      for (size_t i = 0; i < coll.NumElements(); ++i) {
        SPATTER_RETURN_NOT_OK(CheckValid(coll.ElementAt(i)));
      }
      return CheckMultiPolygon(coll);
    }
    case GeomType::kMultiPoint:
    case GeomType::kMultiLineString:
    case GeomType::kGeometryCollection: {
      const auto& coll = geom::AsCollection(g);
      for (size_t i = 0; i < coll.NumElements(); ++i) {
        SPATTER_RETURN_NOT_OK(CheckValid(coll.ElementAt(i)));
      }
      return Status::OK();
    }
  }
  return Status::Internal("unreachable geometry type");
}

bool IsValid(const Geometry& g) { return CheckValid(g).ok(); }

}  // namespace spatter::algo
