#include "algo/polygonize.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "algo/noding.h"
#include "algo/ring_ops.h"
#include "geom/predicates.h"

namespace spatter::algo {

using geom::Coord;
using geom::Geometry;
using geom::GeomPtr;
using geom::GeomType;

namespace {

struct HalfEdge {
  size_t from;       // node index
  size_t to;         // node index
  double angle;      // direction angle at `from`
  bool used = false;
  size_t twin = 0;   // index of the reversed half-edge
};

}  // namespace

GeomPtr Polygonize(const Geometry& g) {
  // 1. Collect linework segments.
  std::vector<TaggedSegment> segs;
  geom::ForEachBasic(g, [&segs](const Geometry& basic) {
    if (basic.type() == GeomType::kLineString) {
      const auto& pts = geom::AsLineString(basic).points();
      for (size_t i = 0; i + 1 < pts.size(); ++i) {
        if (pts[i] != pts[i + 1]) segs.push_back({pts[i], pts[i + 1], 0});
      }
    } else if (basic.type() == GeomType::kPolygon) {
      for (const auto& ring : geom::AsPolygon(basic).rings()) {
        for (size_t i = 0; i + 1 < ring.size(); ++i) {
          if (ring[i] != ring[i + 1]) segs.push_back({ring[i], ring[i + 1], 0});
        }
      }
    }
  });
  if (segs.empty()) return geom::MakeEmpty(GeomType::kGeometryCollection);

  // 2. Node the arrangement.
  const NodingResult noded = NodeSegments(segs, geom::kDerivedEps);

  // 3. Build the half-edge structure. Deduplicate undirected edges first
  //    (overlapping input lines produce repeated noded edges).
  std::map<Coord, size_t> node_index;
  for (size_t i = 0; i < noded.nodes.size(); ++i) {
    node_index[noded.nodes[i]] = i;
  }
  std::vector<std::pair<size_t, size_t>> undirected;
  for (const auto& e : noded.edges) {
    const size_t u = node_index.at(e.a);
    const size_t v = node_index.at(e.b);
    if (u == v) continue;
    const auto key = std::minmax(u, v);
    const std::pair<size_t, size_t> item{key.first, key.second};
    if (std::find(undirected.begin(), undirected.end(), item) ==
        undirected.end()) {
      undirected.push_back(item);
    }
  }

  std::vector<HalfEdge> hedges;
  hedges.reserve(undirected.size() * 2);
  for (const auto& [u, v] : undirected) {
    const Coord& pu = noded.nodes[u];
    const Coord& pv = noded.nodes[v];
    HalfEdge fwd{u, v, std::atan2(pv.y - pu.y, pv.x - pu.x), false, 0};
    HalfEdge rev{v, u, std::atan2(pu.y - pv.y, pu.x - pv.x), false, 0};
    fwd.twin = hedges.size() + 1;
    rev.twin = hedges.size();
    hedges.push_back(fwd);
    hedges.push_back(rev);
  }

  // Outgoing half-edges per node, sorted by angle.
  std::vector<std::vector<size_t>> outgoing(noded.nodes.size());
  for (size_t i = 0; i < hedges.size(); ++i) {
    outgoing[hedges[i].from].push_back(i);
  }
  for (auto& out : outgoing) {
    std::sort(out.begin(), out.end(), [&hedges](size_t a, size_t b) {
      return hedges[a].angle < hedges[b].angle;
    });
  }

  // 4. Trace faces: from each unused half-edge, repeatedly take the
  //    next-clockwise outgoing edge after the reversed incoming edge.
  std::vector<GeomPtr> polys;
  for (size_t start = 0; start < hedges.size(); ++start) {
    if (hedges[start].used) continue;
    std::vector<size_t> face;
    size_t cur = start;
    while (!hedges[cur].used) {
      hedges[cur].used = true;
      face.push_back(cur);
      const size_t twin = hedges[cur].twin;
      const auto& candidates = outgoing[hedges[cur].to];
      // Find the twin among outgoing edges of `to`, then step to the next
      // edge clockwise (previous in CCW-sorted order).
      size_t pos = 0;
      for (size_t k = 0; k < candidates.size(); ++k) {
        if (candidates[k] == twin) {
          pos = k;
          break;
        }
      }
      const size_t next =
          candidates[(pos + candidates.size() - 1) % candidates.size()];
      cur = next;
    }
    if (face.size() < 3) continue;
    std::vector<Coord> ring;
    ring.reserve(face.size() + 1);
    for (size_t he : face) ring.push_back(noded.nodes[hedges[he].from]);
    ring.push_back(ring.front());
    // Counter-clockwise traces are bounded faces under this turn rule.
    if (SignedRingArea(ring) > 0.0) {
      polys.push_back(geom::MakePolygon({std::move(ring)}));
    }
  }

  return geom::MakeCollection(GeomType::kGeometryCollection,
                              std::move(polys));
}

}  // namespace spatter::algo
