// Combinatorial boundary of a geometry (ST_Boundary), with the OGC mod-2
// rule for multi-curves.
#ifndef SPATTER_ALGO_BOUNDARY_H_
#define SPATTER_ALGO_BOUNDARY_H_

#include "geom/geometry.h"

namespace spatter::algo {

/// Computes the boundary:
///  - POINT/MULTIPOINT       -> GEOMETRYCOLLECTION EMPTY
///  - LINESTRING             -> MULTIPOINT of the two endpoints
///                              (empty when closed)
///  - MULTILINESTRING        -> MULTIPOINT of points occurring as element
///                              endpoints an odd number of times (mod-2)
///  - POLYGON                -> LINESTRING (shell only) or MULTILINESTRING
///  - MULTIPOLYGON           -> MULTILINESTRING of all rings
///  - GEOMETRYCOLLECTION     -> union of element boundaries, mod-2 applied
///                              across all line elements (the semantics the
///                              GEOS developers said they want instead of
///                              "last-one-wins"; see paper Listing 6)
geom::GeomPtr Boundary(const geom::Geometry& g);

}  // namespace spatter::algo

#endif  // SPATTER_ALGO_BOUNDARY_H_
