// Editing functions used by the derivative strategy (paper Table 1).
// Each function derives a new geometry from k existing ones; failures are
// reported via Status so the generator can fall back to an EMPTY shape
// (Algorithm 1, lines 21-22).
#ifndef SPATTER_ALGO_EDIT_FUNCTIONS_H_
#define SPATTER_ALGO_EDIT_FUNCTIONS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geom/geometry.h"

namespace spatter::algo {

/// Category from Table 1, by input-geometry dimensionality.
enum class EditCategory {
  kLineBased,
  kPolygonBased,
  kMultiDimensional,
  kGeneric,
};

const char* EditCategoryName(EditCategory c);

/// A derivative-strategy editing function. `inputs.size() == arity`; the
/// Rng supplies any extra scalar parameters (indices, replacement points).
struct EditFunction {
  std::string name;
  EditCategory category;
  int arity;
  std::function<Result<geom::GeomPtr>(
      const std::vector<const geom::Geometry*>& inputs, Rng* rng)>
      apply;
};

/// The full registry (stable order; the generator indexes into it).
const std::vector<EditFunction>& EditFunctions();

/// Looks up a function by name; nullptr when unknown.
const EditFunction* FindEditFunction(const std::string& name);

// --- Individual operations (exposed for direct use and tests) ------------

/// Replaces point `index` of a LINESTRING with `p` (0-based).
Result<geom::GeomPtr> SetPoint(const geom::Geometry& g, size_t index,
                               geom::Coord p);
/// Extracts the rings of a POLYGON as a collection of shell-only POLYGONs.
Result<geom::GeomPtr> DumpRings(const geom::Geometry& g);
/// Forces clockwise exterior rings / counter-clockwise holes.
Result<geom::GeomPtr> ForcePolygonCW(const geom::Geometry& g);
/// Nth element (1-based) of a MULTI/MIXED geometry.
Result<geom::GeomPtr> GeometryN(const geom::Geometry& g, size_t n);
/// Collection of elements of the requested basic type.
Result<geom::GeomPtr> CollectionExtract(const geom::Geometry& g,
                                        geom::GeomType type);
/// Nth point (1-based) of a LINESTRING.
Result<geom::GeomPtr> PointN(const geom::Geometry& g, size_t n);
/// Reverses coordinate order of lines / rings.
Result<geom::GeomPtr> Reverse(const geom::Geometry& g);
/// Envelope as a POLYGON (degenerate inputs yield POINT or LINESTRING).
Result<geom::GeomPtr> EnvelopeOf(const geom::Geometry& g);
/// Combines two geometries into a MULTI (same basic type) or a
/// GEOMETRYCOLLECTION.
Result<geom::GeomPtr> Collect(const geom::Geometry& a,
                              const geom::Geometry& b);

}  // namespace spatter::algo

#endif  // SPATTER_ALGO_EDIT_FUNCTIONS_H_
