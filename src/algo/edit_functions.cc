#include "algo/edit_functions.h"

#include <algorithm>

#include "algo/boundary.h"
#include "algo/convex_hull.h"
#include "algo/polygonize.h"
#include "algo/ring_ops.h"
#include "common/coverage.h"

namespace spatter::algo {

using geom::Coord;
using geom::Geometry;
using geom::GeomPtr;
using geom::GeomType;

const char* EditCategoryName(EditCategory c) {
  switch (c) {
    case EditCategory::kLineBased:
      return "Line-Based";
    case EditCategory::kPolygonBased:
      return "Polygon-Based";
    case EditCategory::kMultiDimensional:
      return "Multi-Dimensional";
    case EditCategory::kGeneric:
      return "Generic";
  }
  return "Unknown";
}

Result<GeomPtr> SetPoint(const Geometry& g, size_t index, Coord p) {
  if (g.type() != GeomType::kLineString) {
    return Status::InvalidArgument("SetPoint expects a LINESTRING");
  }
  const auto& line = geom::AsLineString(g);
  if (index >= line.NumPoints()) {
    return Status::OutOfRange("SetPoint index out of range");
  }
  std::vector<Coord> pts = line.points();
  pts[index] = p;
  SPATTER_COV("edit", "set_point");
  return geom::MakeLineString(std::move(pts));
}

Result<GeomPtr> DumpRings(const Geometry& g) {
  if (g.type() != GeomType::kPolygon) {
    return Status::InvalidArgument("DumpRings expects a POLYGON");
  }
  const auto& poly = geom::AsPolygon(g);
  if (poly.IsEmpty()) {
    return Status::InvalidArgument("DumpRings on empty polygon");
  }
  std::vector<GeomPtr> rings;
  for (const auto& ring : poly.rings()) {
    rings.push_back(geom::MakePolygon({ring}));
  }
  SPATTER_COV("edit", "dump_rings");
  return geom::MakeCollection(GeomType::kGeometryCollection,
                              std::move(rings));
}

namespace {

GeomPtr ForceCwPolygon(const geom::Polygon& poly) {
  std::vector<geom::Polygon::Ring> rings;
  rings.reserve(poly.NumRings());
  for (size_t i = 0; i < poly.NumRings(); ++i) {
    auto ring = poly.rings()[i];
    const bool want_ccw = i > 0;  // exterior CW, holes CCW.
    if (IsCcw(ring) != want_ccw) std::reverse(ring.begin(), ring.end());
    rings.push_back(std::move(ring));
  }
  return geom::MakePolygon(std::move(rings));
}

}  // namespace

Result<GeomPtr> ForcePolygonCW(const Geometry& g) {
  if (g.type() == GeomType::kPolygon) {
    SPATTER_COV("edit", "force_polygon_cw");
    return ForceCwPolygon(geom::AsPolygon(g));
  }
  if (g.type() == GeomType::kMultiPolygon) {
    const auto& coll = geom::AsCollection(g);
    std::vector<GeomPtr> elems;
    for (size_t i = 0; i < coll.NumElements(); ++i) {
      elems.push_back(ForceCwPolygon(geom::AsPolygon(coll.ElementAt(i))));
    }
    SPATTER_COV("edit", "force_multipolygon_cw");
    return geom::MakeCollection(GeomType::kMultiPolygon, std::move(elems));
  }
  return Status::InvalidArgument(
      "ForcePolygonCW expects POLYGON or MULTIPOLYGON");
}

Result<GeomPtr> GeometryN(const Geometry& g, size_t n) {
  if (!g.IsCollection()) {
    return Status::InvalidArgument("GeometryN expects a collection");
  }
  const auto& coll = geom::AsCollection(g);
  if (n < 1 || n > coll.NumElements()) {
    return Status::OutOfRange("GeometryN index out of range");
  }
  SPATTER_COV("edit", "geometry_n");
  return coll.ElementAt(n - 1).Clone();
}

Result<GeomPtr> CollectionExtract(const Geometry& g, GeomType type) {
  if (geom::IsCollectionType(type) || !g.IsCollection()) {
    if (!g.IsCollection()) {
      // PostGIS semantics: a basic geometry is returned as-is when it
      // matches, empty otherwise.
      if (g.type() == type) return g.Clone();
      return geom::MakeEmpty(type);
    }
    return Status::InvalidArgument("CollectionExtract expects a basic type");
  }
  std::vector<GeomPtr> extracted;
  geom::ForEachBasic(g, [&](const Geometry& basic) {
    if (basic.type() == type && !basic.IsEmpty()) {
      extracted.push_back(basic.Clone());
    }
  });
  GeomType multi = GeomType::kGeometryCollection;
  switch (type) {
    case GeomType::kPoint:
      multi = GeomType::kMultiPoint;
      break;
    case GeomType::kLineString:
      multi = GeomType::kMultiLineString;
      break;
    case GeomType::kPolygon:
      multi = GeomType::kMultiPolygon;
      break;
    default:
      break;
  }
  SPATTER_COV("edit", "collection_extract");
  return geom::MakeCollection(multi, std::move(extracted));
}

Result<GeomPtr> PointN(const Geometry& g, size_t n) {
  if (g.type() != GeomType::kLineString) {
    return Status::InvalidArgument("PointN expects a LINESTRING");
  }
  const auto& line = geom::AsLineString(g);
  if (n < 1 || n > line.NumPoints()) {
    return Status::OutOfRange("PointN index out of range");
  }
  SPATTER_COV("edit", "point_n");
  const Coord& c = line.PointAt(n - 1);
  return geom::MakePoint(c.x, c.y);
}

Result<GeomPtr> Reverse(const Geometry& g) {
  GeomPtr out = g.Clone();
  // Reverse every coordinate sequence in place.
  std::function<void(Geometry*)> rec = [&rec](Geometry* cur) {
    switch (cur->type()) {
      case GeomType::kLineString: {
        auto* line = static_cast<geom::LineString*>(cur);
        std::reverse(line->mutable_points().begin(),
                     line->mutable_points().end());
        break;
      }
      case GeomType::kPolygon: {
        auto* poly = static_cast<geom::Polygon*>(cur);
        for (auto& ring : poly->mutable_rings()) {
          std::reverse(ring.begin(), ring.end());
        }
        break;
      }
      case GeomType::kPoint:
        break;
      default: {
        auto* coll = static_cast<geom::GeometryCollection*>(cur);
        for (auto& e : coll->mutable_elements()) rec(e.get());
      }
    }
  };
  rec(out.get());
  SPATTER_COV("edit", "reverse");
  return out;
}

Result<GeomPtr> EnvelopeOf(const Geometry& g) {
  const geom::Envelope env = g.GetEnvelope();
  if (env.IsNull()) return Status::InvalidArgument("Envelope of empty input");
  SPATTER_COV("edit", "envelope");
  if (env.Width() == 0.0 && env.Height() == 0.0) {
    return geom::MakePoint(env.min_x(), env.min_y());
  }
  if (env.Width() == 0.0 || env.Height() == 0.0) {
    return geom::MakeLineString(
        {{env.min_x(), env.min_y()}, {env.max_x(), env.max_y()}});
  }
  return geom::MakePolygon({{{env.min_x(), env.min_y()},
                             {env.max_x(), env.min_y()},
                             {env.max_x(), env.max_y()},
                             {env.min_x(), env.max_y()},
                             {env.min_x(), env.min_y()}}});
}

Result<GeomPtr> Collect(const Geometry& a, const Geometry& b) {
  SPATTER_COV("edit", "collect");
  std::vector<GeomPtr> elems;
  elems.push_back(a.Clone());
  elems.push_back(b.Clone());
  if (a.type() == b.type() && !a.IsCollection()) {
    switch (a.type()) {
      case GeomType::kPoint:
        return geom::MakeCollection(GeomType::kMultiPoint, std::move(elems));
      case GeomType::kLineString:
        return geom::MakeCollection(GeomType::kMultiLineString,
                                    std::move(elems));
      case GeomType::kPolygon:
        return geom::MakeCollection(GeomType::kMultiPolygon,
                                    std::move(elems));
      default:
        break;
    }
  }
  return geom::MakeCollection(GeomType::kGeometryCollection,
                              std::move(elems));
}

const std::vector<EditFunction>& EditFunctions() {
  static const std::vector<EditFunction> kFunctions = [] {
    std::vector<EditFunction> fns;
    fns.push_back({"SetPoint", EditCategory::kLineBased, 1,
                   [](const std::vector<const Geometry*>& in, Rng* rng) {
                     const auto& g = *in[0];
                     if (g.type() != GeomType::kLineString || g.IsEmpty()) {
                       return Result<GeomPtr>(Status::InvalidArgument(
                           "SetPoint needs a non-empty LINESTRING"));
                     }
                     const size_t n = geom::AsLineString(g).NumPoints();
                     const size_t idx = rng->Below(n);
                     const Coord p{static_cast<double>(rng->IntIn(-10, 10)),
                                   static_cast<double>(rng->IntIn(-10, 10))};
                     return SetPoint(g, idx, p);
                   }});
    fns.push_back({"Polygonize", EditCategory::kLineBased, 1,
                   [](const std::vector<const Geometry*>& in, Rng*) {
                     SPATTER_COV("edit", "polygonize");
                     return Result<GeomPtr>(Polygonize(*in[0]));
                   }});
    fns.push_back({"DumpRings", EditCategory::kPolygonBased, 1,
                   [](const std::vector<const Geometry*>& in, Rng*) {
                     return DumpRings(*in[0]);
                   }});
    fns.push_back({"ForcePolygonCW", EditCategory::kPolygonBased, 1,
                   [](const std::vector<const Geometry*>& in, Rng*) {
                     return ForcePolygonCW(*in[0]);
                   }});
    fns.push_back({"GeometryN", EditCategory::kMultiDimensional, 1,
                   [](const std::vector<const Geometry*>& in, Rng* rng) {
                     const auto& g = *in[0];
                     if (!g.IsCollection() ||
                         geom::AsCollection(g).NumElements() == 0) {
                       return Result<GeomPtr>(Status::InvalidArgument(
                           "GeometryN needs a non-empty collection"));
                     }
                     const size_t n =
                         1 + rng->Below(geom::AsCollection(g).NumElements());
                     return GeometryN(g, n);
                   }});
    fns.push_back(
        {"CollectionExtract", EditCategory::kMultiDimensional, 1,
         [](const std::vector<const Geometry*>& in, Rng* rng) {
           static const GeomType kBasic[] = {
               GeomType::kPoint, GeomType::kLineString, GeomType::kPolygon};
           return CollectionExtract(*in[0], kBasic[rng->Below(3)]);
         }});
    fns.push_back({"Boundary", EditCategory::kGeneric, 1,
                   [](const std::vector<const Geometry*>& in, Rng*) {
                     SPATTER_COV("edit", "boundary");
                     return Result<GeomPtr>(Boundary(*in[0]));
                   }});
    fns.push_back({"ConvexHull", EditCategory::kGeneric, 1,
                   [](const std::vector<const Geometry*>& in, Rng*) {
                     SPATTER_COV("edit", "convex_hull");
                     return Result<GeomPtr>(ConvexHull(*in[0]));
                   }});
    fns.push_back({"PointN", EditCategory::kLineBased, 1,
                   [](const std::vector<const Geometry*>& in, Rng* rng) {
                     const auto& g = *in[0];
                     if (g.type() != GeomType::kLineString || g.IsEmpty()) {
                       return Result<GeomPtr>(Status::InvalidArgument(
                           "PointN needs a non-empty LINESTRING"));
                     }
                     const size_t n =
                         1 + rng->Below(geom::AsLineString(g).NumPoints());
                     return PointN(g, n);
                   }});
    fns.push_back({"Reverse", EditCategory::kGeneric, 1,
                   [](const std::vector<const Geometry*>& in, Rng*) {
                     return Reverse(*in[0]);
                   }});
    fns.push_back({"Envelope", EditCategory::kGeneric, 1,
                   [](const std::vector<const Geometry*>& in, Rng*) {
                     return EnvelopeOf(*in[0]);
                   }});
    fns.push_back({"Collect", EditCategory::kGeneric, 2,
                   [](const std::vector<const Geometry*>& in, Rng*) {
                     return Collect(*in[0], *in[1]);
                   }});
    return fns;
  }();
  return kFunctions;
}

const EditFunction* FindEditFunction(const std::string& name) {
  for (const auto& fn : EditFunctions()) {
    if (fn.name == name) return &fn;
  }
  return nullptr;
}

}  // namespace spatter::algo
