#include "algo/canonicalize.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "algo/ring_ops.h"
#include "common/coverage.h"

namespace spatter::algo {

using geom::Coord;
using geom::Geometry;
using geom::GeomPtr;
using geom::GeomType;

namespace {

std::vector<Coord> RemoveConsecutiveDuplicates(const std::vector<Coord>& pts) {
  std::vector<Coord> out;
  out.reserve(pts.size());
  for (const auto& p : pts) {
    if (out.empty() || out.back() != p) out.push_back(p);
  }
  return out;
}

// Removes consecutive duplicates from a closed ring, preserving closure.
std::vector<Coord> CleanRing(const std::vector<Coord>& ring) {
  std::vector<Coord> out = RemoveConsecutiveDuplicates(ring);
  if (out.size() >= 2 && out.front() == out.back()) {
    // Already closed; nothing else to do.
    return out;
  }
  if (out.size() >= 3) out.push_back(out.front());  // re-close if needed.
  return out;
}

// Rotates a closed ring so it starts at its lexicographically minimal
// vertex. Only used for shape keys; the paper's canonical form does not
// rotate rings.
std::vector<Coord> RotateRingToMin(const std::vector<Coord>& ring) {
  if (ring.size() < 3) return ring;
  const bool closed = ring.front() == ring.back();
  std::vector<Coord> open(ring.begin(), closed ? ring.end() - 1 : ring.end());
  const auto min_it = std::min_element(open.begin(), open.end());
  std::rotate(open.begin(), min_it, open.end());
  open.push_back(open.front());
  return open;
}

GeomPtr ValueLevel(const Geometry& g) {
  switch (g.type()) {
    case GeomType::kPoint:
      return g.Clone();
    case GeomType::kLineString: {
      SPATTER_COV("canon", "value_linestring");
      const auto& line = geom::AsLineString(g);
      std::vector<Coord> pts = RemoveConsecutiveDuplicates(line.points());
      if (pts.size() == 1) {
        // A zero-length line collapses to the point it occupies; keeping a
        // one-point LINESTRING would lose the point set entirely.
        SPATTER_COV("canon", "value_degenerate_line_to_point");
        return geom::MakePoint(pts[0].x, pts[0].y);
      }
      if (pts.size() >= 2) {
        const Coord& first = pts.front();
        const Coord& last = pts.back();
        if (last < first) {
          SPATTER_COV("canon", "value_linestring_reversed");
          std::reverse(pts.begin(), pts.end());
        }
      }
      return geom::MakeLineString(std::move(pts));
    }
    case GeomType::kPolygon: {
      SPATTER_COV("canon", "value_polygon");
      const auto& poly = geom::AsPolygon(g);
      std::vector<geom::Polygon::Ring> rings;
      rings.reserve(poly.NumRings());
      for (const auto& ring : poly.rings()) {
        auto cleaned = CleanRing(ring);
        // Clockwise orientation == negative signed area.
        if (SignedRingArea(cleaned) > 0.0) {
          SPATTER_COV("canon", "value_ring_reoriented");
          std::reverse(cleaned.begin(), cleaned.end());
        }
        rings.push_back(std::move(cleaned));
      }
      return geom::MakePolygon(std::move(rings));
    }
    default: {
      const auto& coll = geom::AsCollection(g);
      std::vector<GeomPtr> elems;
      elems.reserve(coll.NumElements());
      for (size_t i = 0; i < coll.NumElements(); ++i) {
        elems.push_back(ValueLevel(coll.ElementAt(i)));
      }
      return geom::MakeCollection(g.type(), std::move(elems));
    }
  }
}

// Splices nested collections into a flat list of basic elements.
void Flatten(const Geometry& g, std::vector<GeomPtr>* out) {
  if (g.IsCollection()) {
    const auto& coll = geom::AsCollection(g);
    for (size_t i = 0; i < coll.NumElements(); ++i) {
      Flatten(coll.ElementAt(i), out);
    }
  } else {
    out->push_back(g.Clone());
  }
}

}  // namespace

GeomPtr CanonicalizeValueLevel(const Geometry& g) { return ValueLevel(g); }

std::string ShapeKey(const Geometry& g) {
  GeomPtr canon = ValueLevel(g);
  // Normalize ring rotation for comparison purposes.
  if (canon->type() == GeomType::kPolygon) {
    auto& rings = static_cast<geom::Polygon*>(canon.get())->mutable_rings();
    for (auto& ring : rings) ring = RotateRingToMin(ring);
    std::sort(rings.begin() + (rings.empty() ? 0 : 1), rings.end());
  }
  return canon->ToWkt();
}

GeomPtr Canonicalize(const Geometry& g) {
  if (!g.IsCollection()) return ValueLevel(g);

  SPATTER_COV("canon", "element_level");
  // Step 1+2: flatten nested collections while dropping EMPTY elements.
  std::vector<GeomPtr> flat;
  Flatten(g, &flat);
  std::vector<GeomPtr> kept;
  for (auto& e : flat) {
    if (e->IsEmpty()) {
      SPATTER_COV("canon", "element_empty_removed");
      continue;
    }
    kept.push_back(Canonicalize(*e));
  }

  // Step 3: duplicate removal by shape.
  std::vector<GeomPtr> unique;
  std::vector<std::string> keys;
  for (auto& e : kept) {
    const std::string key = ShapeKey(*e);
    if (std::find(keys.begin(), keys.end(), key) != keys.end()) {
      SPATTER_COV("canon", "element_duplicate_removed");
      continue;
    }
    keys.push_back(key);
    unique.push_back(std::move(e));
  }

  // Step 4: reorder by dimension (then by shape key, for determinism).
  std::vector<size_t> order(unique.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const int da = unique[a]->Dimension();
    const int db = unique[b]->Dimension();
    if (da != db) return da < db;
    return keys[a] < keys[b];
  });
  std::vector<GeomPtr> ordered;
  ordered.reserve(unique.size());
  for (size_t idx : order) ordered.push_back(std::move(unique[idx]));

  // Homogenization: a collection reduced to a single element becomes that
  // basic-type geometry.
  if (ordered.size() == 1) {
    SPATTER_COV("canon", "element_homogenized_single");
    return std::move(ordered[0]);
  }
  if (ordered.empty()) {
    return geom::MakeEmpty(g.type());
  }

  // Homogenization, second half: elements sharing one basic type collapse
  // into the corresponding MULTI type ("a uniform structural
  // representation"); mixed content stays a GEOMETRYCOLLECTION.
  GeomType out_type = GeomType::kGeometryCollection;
  const GeomType first = ordered[0]->type();
  bool uniform = !geom::IsCollectionType(first);
  for (const auto& e : ordered) {
    if (e->type() != first) uniform = false;
  }
  if (uniform) {
    switch (first) {
      case GeomType::kPoint:
        out_type = GeomType::kMultiPoint;
        break;
      case GeomType::kLineString:
        out_type = GeomType::kMultiLineString;
        break;
      case GeomType::kPolygon:
        out_type = GeomType::kMultiPolygon;
        break;
      default:
        break;
    }
    SPATTER_COV("canon", "element_homogenized_multi");
  }
  return geom::MakeCollection(out_type, std::move(ordered));
}

}  // namespace spatter::algo
