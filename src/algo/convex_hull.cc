#include "algo/convex_hull.h"

#include <algorithm>
#include <vector>

#include "geom/predicates.h"

namespace spatter::algo {

using geom::Coord;
using geom::Geometry;

geom::GeomPtr ConvexHull(const Geometry& g) {
  std::vector<Coord> pts;
  geom::ForEachBasic(g, [&pts](const Geometry& basic) {
    switch (basic.type()) {
      case geom::GeomType::kPoint:
        if (!basic.IsEmpty()) pts.push_back(*geom::AsPoint(basic).coord());
        break;
      case geom::GeomType::kLineString: {
        const auto& line = geom::AsLineString(basic).points();
        pts.insert(pts.end(), line.begin(), line.end());
        break;
      }
      case geom::GeomType::kPolygon:
        for (const auto& ring : geom::AsPolygon(basic).rings()) {
          pts.insert(pts.end(), ring.begin(), ring.end());
        }
        break;
      default:
        break;
    }
  });

  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());

  if (pts.empty()) return geom::MakeEmpty(geom::GeomType::kGeometryCollection);
  if (pts.size() == 1) return geom::MakePoint(pts[0].x, pts[0].y);

  // Monotone chain.
  std::vector<Coord> hull(2 * pts.size());
  size_t k = 0;
  for (const auto& p : pts) {  // lower hull
    while (k >= 2 && geom::CrossProduct(hull[k - 2], hull[k - 1], p) <= 0) k--;
    hull[k++] = p;
  }
  const size_t lower = k + 1;
  for (size_t i = pts.size() - 1; i-- > 0;) {  // upper hull
    const Coord& p = pts[i];
    while (k >= lower && geom::CrossProduct(hull[k - 2], hull[k - 1], p) <= 0) {
      k--;
    }
    hull[k++] = p;
  }
  hull.resize(k);  // hull.front() == hull.back() when k > 2.

  if (hull.size() <= 3) {
    // All points collinear: hull is start..end..start; emit a LINESTRING.
    std::vector<Coord> line{hull.front(), hull[hull.size() / 2]};
    if (line[0] == line[1]) return geom::MakePoint(line[0].x, line[0].y);
    return geom::MakeLineString(std::move(line));
  }
  return geom::MakePolygon({std::move(hull)});
}

}  // namespace spatter::algo
