#include "algo/affine.h"

#include <cmath>
#include <cstdio>

namespace spatter::algo {

AffineTransform AffineTransform::Rotation(double radians) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  return {c, -s, s, c, 0, 0};
}

Result<AffineTransform> AffineTransform::Inverse() const {
  const double det = Determinant();
  if (det == 0.0) {
    return Status::InvalidArgument("affine transform is singular");
  }
  const double i11 = a22_ / det;
  const double i12 = -a12_ / det;
  const double i21 = -a21_ / det;
  const double i22 = a11_ / det;
  // Inverse translation: -A^{-1} b.
  const double ib1 = -(i11 * b1_ + i12 * b2_);
  const double ib2 = -(i21 * b1_ + i22 * b2_);
  return AffineTransform(i11, i12, i21, i22, ib1, ib2);
}

AffineTransform AffineTransform::Compose(const AffineTransform& o) const {
  return AffineTransform(
      a11_ * o.a11_ + a12_ * o.a21_, a11_ * o.a12_ + a12_ * o.a22_,
      a21_ * o.a11_ + a22_ * o.a21_, a21_ * o.a12_ + a22_ * o.a22_,
      a11_ * o.b1_ + a12_ * o.b2_ + b1_, a21_ * o.b1_ + a22_ * o.b2_ + b2_);
}

geom::GeomPtr AffineTransform::Apply(const geom::Geometry& g) const {
  geom::GeomPtr copy = g.Clone();
  ApplyInPlace(copy.get());
  return copy;
}

void AffineTransform::ApplyInPlace(geom::Geometry* g) const {
  g->MutateCoords(
      [this](const geom::Coord& c) -> geom::Coord { return Apply(c); });
}

std::string AffineTransform::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "A=[[%g,%g],[%g,%g]] b=(%g,%g)", a11_, a12_,
                a21_, a22_, b1_, b2_);
  return buf;
}

AffineTransform3D::AffineTransform3D()
    : a_{1, 0, 0, 0, 1, 0, 0, 0, 1}, b_{0, 0, 0} {}

AffineTransform3D::AffineTransform3D(const std::array<double, 9>& a,
                                     const std::array<double, 3>& b)
    : a_(a), b_(b) {}

double AffineTransform3D::Determinant() const {
  return a_[0] * (a_[4] * a_[8] - a_[5] * a_[7]) -
         a_[1] * (a_[3] * a_[8] - a_[5] * a_[6]) +
         a_[2] * (a_[3] * a_[7] - a_[4] * a_[6]);
}

Result<AffineTransform3D> AffineTransform3D::Inverse() const {
  const double det = Determinant();
  if (det == 0.0) {
    return Status::InvalidArgument("3D affine transform is singular");
  }
  std::array<double, 9> inv;
  inv[0] = (a_[4] * a_[8] - a_[5] * a_[7]) / det;
  inv[1] = (a_[2] * a_[7] - a_[1] * a_[8]) / det;
  inv[2] = (a_[1] * a_[5] - a_[2] * a_[4]) / det;
  inv[3] = (a_[5] * a_[6] - a_[3] * a_[8]) / det;
  inv[4] = (a_[0] * a_[8] - a_[2] * a_[6]) / det;
  inv[5] = (a_[2] * a_[3] - a_[0] * a_[5]) / det;
  inv[6] = (a_[3] * a_[7] - a_[4] * a_[6]) / det;
  inv[7] = (a_[1] * a_[6] - a_[0] * a_[7]) / det;
  inv[8] = (a_[0] * a_[4] - a_[1] * a_[3]) / det;
  std::array<double, 3> ib;
  for (int i = 0; i < 3; ++i) {
    ib[i] = -(inv[i * 3] * b_[0] + inv[i * 3 + 1] * b_[1] +
              inv[i * 3 + 2] * b_[2]);
  }
  return AffineTransform3D(inv, ib);
}

AffineTransform3D AffineTransform3D::Compose(
    const AffineTransform3D& o) const {
  std::array<double, 9> a;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      a[i * 3 + j] = a_[i * 3] * o.a_[j] + a_[i * 3 + 1] * o.a_[3 + j] +
                     a_[i * 3 + 2] * o.a_[6 + j];
    }
  }
  std::array<double, 3> b;
  for (int i = 0; i < 3; ++i) {
    b[i] = a_[i * 3] * o.b_[0] + a_[i * 3 + 1] * o.b_[1] +
           a_[i * 3 + 2] * o.b_[2] + b_[i];
  }
  return AffineTransform3D(a, b);
}

std::array<double, 3> AffineTransform3D::Apply(
    const std::array<double, 3>& p) const {
  std::array<double, 3> out;
  for (int i = 0; i < 3; ++i) {
    out[i] = a_[i * 3] * p[0] + a_[i * 3 + 1] * p[1] + a_[i * 3 + 2] * p[2] +
             b_[i];
  }
  return out;
}

std::array<double, 16> AffineTransform3D::MappingMatrix() const {
  return {a_[0], a_[1], a_[2], b_[0], a_[3], a_[4], a_[5], b_[1],
          a_[6], a_[7], a_[8], b_[2], 0,     0,     0,     1};
}

}  // namespace spatter::algo
