// Polygonization: forms polygons from the linework of the input
// (the derivative strategy's Polygonize edit function, Table 1).
#ifndef SPATTER_ALGO_POLYGONIZE_H_
#define SPATTER_ALGO_POLYGONIZE_H_

#include "geom/geometry.h"

namespace spatter::algo {

/// Nodes the input linework and traces the bounded faces of the resulting
/// planar arrangement; each bounded face becomes a POLYGON. Returns a
/// GEOMETRYCOLLECTION of the polygons (empty collection when the linework
/// encloses nothing). Faces are traced with minimal-turn traversal; faces
/// with non-positive area (the unbounded face) are discarded. Hole
/// assembly is not performed: nested faces come back as separate polygons,
/// which is sufficient for generating diverse topological material.
geom::GeomPtr Polygonize(const geom::Geometry& g);

}  // namespace spatter::algo

#endif  // SPATTER_ALGO_POLYGONIZE_H_
