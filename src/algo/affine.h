// Affine transformations (paper §2.3, Equations (2)–(4)).
//
// A 2D transform is stored as the augmented 3x3 mapping matrix M of
// Equation (4): [A b; 0 1]. The campaign only instantiates integer-valued
// matrices with det(A) != 0 (paper §4.2) so the transform is invertible and
// exact in double arithmetic.
#ifndef SPATTER_ALGO_AFFINE_H_
#define SPATTER_ALGO_AFFINE_H_

#include <array>
#include <string>

#include "common/status.h"
#include "geom/geometry.h"

namespace spatter::algo {

/// 2D affine transform y = A x + b.
class AffineTransform {
 public:
  /// Identity transform.
  AffineTransform() : AffineTransform(1, 0, 0, 1, 0, 0) {}

  /// From linear part [[a11, a12], [a21, a22]] and translation (b1, b2).
  AffineTransform(double a11, double a12, double a21, double a22, double b1,
                  double b2)
      : a11_(a11), a12_(a12), a21_(a21), a22_(a22), b1_(b1), b2_(b2) {}

  static AffineTransform Identity() { return AffineTransform(); }
  static AffineTransform Translation(double dx, double dy) {
    return {1, 0, 0, 1, dx, dy};
  }
  static AffineTransform Scaling(double sx, double sy) {
    return {sx, 0, 0, sy, 0, 0};
  }
  /// Rotation by `radians` counter-clockwise about the origin.
  static AffineTransform Rotation(double radians);
  static AffineTransform ShearX(double k) { return {1, k, 0, 1, 0, 0}; }
  static AffineTransform ShearY(double k) { return {1, 0, k, 1, 0, 0}; }
  /// Swaps x and y axes (the MySQL ST_SwapXY scenario, Listing 4).
  static AffineTransform SwapXY() { return {0, 1, 1, 0, 0, 0}; }

  double Determinant() const { return a11_ * a22_ - a12_ * a21_; }
  bool IsInvertible() const { return Determinant() != 0.0; }
  bool IsIdentity() const {
    return a11_ == 1 && a12_ == 0 && a21_ == 0 && a22_ == 1 && b1_ == 0 &&
           b2_ == 0;
  }

  /// Inverse transform; fails when the linear part is singular.
  Result<AffineTransform> Inverse() const;

  /// Composition: (this * other)(p) == this(other(p)).
  AffineTransform Compose(const AffineTransform& other) const;

  geom::Coord Apply(const geom::Coord& p) const {
    return {a11_ * p.x + a12_ * p.y + b1_, a21_ * p.x + a22_ * p.y + b2_};
  }

  /// Applies the transform to a deep copy of `g`.
  geom::GeomPtr Apply(const geom::Geometry& g) const;

  /// Applies the transform to `g` in place.
  void ApplyInPlace(geom::Geometry* g) const;

  /// The augmented 3x3 mapping matrix of Equation (4), row-major.
  std::array<double, 9> MappingMatrix() const {
    return {a11_, a12_, b1_, a21_, a22_, b2_, 0, 0, 1};
  }

  /// "A=[[..],[..]] b=(..,..)" debug form.
  std::string ToString() const;

  double a11() const { return a11_; }
  double a12() const { return a12_; }
  double a21() const { return a21_; }
  double a22() const { return a22_; }
  double b1() const { return b1_; }
  double b2() const { return b2_; }

 private:
  double a11_, a12_, a21_, a22_, b1_, b2_;
};

/// 3D affine transform y = A x + b over homogeneous 4x4 matrices,
/// implementing Equation (3). The 2D campaign does not use it; it exists so
/// the math layer covers both Euclidean spaces the paper formalizes.
class AffineTransform3D {
 public:
  AffineTransform3D();  // identity
  /// Row-major 3x3 linear part and 3-vector translation.
  AffineTransform3D(const std::array<double, 9>& a,
                    const std::array<double, 3>& b);

  double Determinant() const;
  bool IsInvertible() const { return Determinant() != 0.0; }
  Result<AffineTransform3D> Inverse() const;
  AffineTransform3D Compose(const AffineTransform3D& other) const;

  std::array<double, 3> Apply(const std::array<double, 3>& p) const;
  /// The augmented 4x4 mapping matrix, row-major.
  std::array<double, 16> MappingMatrix() const;

 private:
  std::array<double, 9> a_;
  std::array<double, 3> b_;
};

}  // namespace spatter::algo

#endif  // SPATTER_ALGO_AFFINE_H_
