// Canonicalization (paper §4.3): converts a geometry's representation into
// a canonical, spatially equivalent one. Used by Spatter both as a
// standalone oracle (identity-matrix AEI) and as the pre-processing step of
// affine-equivalent-input construction.
#ifndef SPATTER_ALGO_CANONICALIZE_H_
#define SPATTER_ALGO_CANONICALIZE_H_

#include <string>

#include "geom/geometry.h"

namespace spatter::algo {

/// Value-level canonicalization of a basic geometry (applied recursively to
/// collection elements):
///  - consecutive duplicate points removed (rings stay closed),
///  - LINESTRINGs reversed when the last point sorts before the first
///    (x-axis, then y-axis comparison, per the paper),
///  - POLYGON rings forced to clockwise orientation.
geom::GeomPtr CanonicalizeValueLevel(const geom::Geometry& g);

/// Full canonicalization: element level (EMPTY removal, homogenization /
/// flattening of nested collections, shape-based duplicate removal,
/// reordering by dimension) followed by value level.
geom::GeomPtr Canonicalize(const geom::Geometry& g);

/// Shape key: a representation-independent fingerprint used for the
/// element-level duplicate removal ("duplicates are identified based on
/// their shape"). Two elements with equal keys describe the same point set
/// for the representations the generator can produce (value-level
/// canonical WKT with ring rotation normalized to the minimal vertex).
std::string ShapeKey(const geom::Geometry& g);

}  // namespace spatter::algo

#endif  // SPATTER_ALGO_CANONICALIZE_H_
