// Segment noding: splits an arbitrary set of tagged segments at every
// mutual intersection (including collinear overlaps) so the output edges
// only meet at endpoints. This is the arrangement substrate shared by the
// DE-9IM relate computer and the polygonizer.
#ifndef SPATTER_ALGO_NODING_H_
#define SPATTER_ALGO_NODING_H_

#include <cstdint>
#include <vector>

#include "geom/coordinate.h"

namespace spatter::algo {

/// Input segment with a source tag (relate uses 0 = geometry A,
/// 1 = geometry B; the polygonizer uses 0 for everything).
struct TaggedSegment {
  geom::Coord a;
  geom::Coord b;
  int src = 0;
};

/// Output edge: a sub-segment of exactly one input segment, crossing no
/// other output edge except at shared endpoints.
struct NodedEdge {
  geom::Coord a;
  geom::Coord b;
  int src = 0;
  size_t input_index = 0;  ///< index of the originating TaggedSegment
};

struct NodingResult {
  std::vector<NodedEdge> edges;
  /// Unique node coordinates (all edge endpoints after eps-merging).
  std::vector<geom::Coord> nodes;
};

/// Nodes all segments pairwise (O(n^2) candidate pairs with an envelope
/// pre-filter; campaign inputs are tiny). Nearby intersection points within
/// `eps` are merged onto a single node so concurrent crossings from
/// different pairs agree.
NodingResult NodeSegments(const std::vector<TaggedSegment>& segments,
                          double eps);

}  // namespace spatter::algo

#endif  // SPATTER_ALGO_NODING_H_
