// Ring-level operations: signed area, orientation, point-in-ring /
// point-in-polygon location, interior-point computation.
#ifndef SPATTER_ALGO_RING_OPS_H_
#define SPATTER_ALGO_RING_OPS_H_

#include <optional>
#include <vector>

#include "geom/geometry.h"

namespace spatter::algo {

/// Point location relative to a point set.
enum class RingLocation { kInterior, kBoundary, kExterior };

/// Signed area of a closed ring (positive when counter-clockwise).
double SignedRingArea(const std::vector<geom::Coord>& ring);

/// True when the ring winds counter-clockwise (positive signed area).
bool IsCcw(const std::vector<geom::Coord>& ring);

/// Reverses ring orientation in place.
void ReverseRing(std::vector<geom::Coord>* ring);

/// Locates `p` relative to a single closed ring using the even-odd rule.
/// `eps` loosens the boundary test for derived (non-integer) points.
RingLocation LocateInRing(const geom::Coord& p,
                          const std::vector<geom::Coord>& ring,
                          double eps = 0.0);

/// Locates `p` relative to a polygon (shell + holes, even-odd semantics;
/// consistent results even for invalid self-intersecting rings).
RingLocation LocateInPolygon(const geom::Coord& p, const geom::Polygon& poly,
                             double eps = 0.0);

/// Area of a polygon (shell minus holes, absolute).
double PolygonArea(const geom::Polygon& poly);

/// Total area over all areal components of any geometry.
double GeometryArea(const geom::Geometry& g);

/// Total length over all 1-dimensional components (rings excluded).
double GeometryLength(const geom::Geometry& g);

/// A point guaranteed to lie strictly inside the polygon, if one exists
/// (scanline through the interior with verification). Returns nullopt for
/// empty or degenerate (zero-area) polygons.
std::optional<geom::Coord> InteriorPointOfPolygon(const geom::Polygon& poly);

/// Centroid of the highest-dimension components (area-weighted for
/// polygons, length-weighted for lines, mean for points). Returns nullopt
/// when the geometry is empty.
std::optional<geom::Coord> Centroid(const geom::Geometry& g);

}  // namespace spatter::algo

#endif  // SPATTER_ALGO_RING_OPS_H_
