// Reproduces Table 5: "Code coverage of the systems tested".
//
// The paper gcovs PostGIS and GEOS after (a) Spatter alone, (b) the
// official unit tests, (c) unit tests + Spatter. We measure the analogous
// quantity over our instrumented coverage points, grouped into the
// "GEOS-like" shared geometry/topology layer and the "PostGIS-like"
// engine layer. The unit-test corpus is a fixed statement set mirroring
// how regression suites exercise a broad function surface with hand-picked
// inputs.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/coverage.h"

using namespace spatter;        // NOLINT
using namespace spatter::bench;  // NOLINT

namespace {

// Coverage-point modules attributed to each layer.
const char* kGeosModules[] = {"relate", "locate", "predicate", "prepared",
                              "canon"};
const char* kEngineModules[] = {"engine", "engine_fn", "engine_stmt",
                                "edit"};

// Force registration of the full function/statement surface so the
// denominator is stable across configurations.
void RegisterSurface() {
  engine::Engine warmup(engine::Dialect::kPostgis, false);
  (void)warmup.Execute("SELECT ST_IsEmpty('POINT EMPTY');");
}

double Percent(const char* const* modules, size_t n) {
  size_t hit = 0;
  size_t total = 0;
  auto& reg = CoverageRegistry::Instance();
  for (size_t i = 0; i < n; ++i) {
    hit += reg.HitPoints(modules[i]);
    total += reg.TotalPoints(modules[i]);
  }
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(hit) /
                                static_cast<double>(total);
}

// A fixed "unit test" corpus: the kind of handwritten statements regression
// suites accumulate.
void RunUnitTestCorpus() {
  engine::Engine e(engine::Dialect::kPostgis, /*enable_faults=*/false);
  const char* corpus[] = {
      "CREATE TABLE t1 (g geometry);",
      "CREATE TABLE t2 (g geometry);",
      "CREATE INDEX i1 ON t1 USING GIST (g);",
      "INSERT INTO t1 (g) VALUES ('POINT(1 1)');",
      "INSERT INTO t1 (g) VALUES ('LINESTRING(0 0,5 5)');",
      "INSERT INTO t1 (g) VALUES ('POLYGON((0 0,4 0,4 4,0 4,0 0))');",
      "INSERT INTO t2 (g) VALUES ('MULTIPOINT((1 1),(2 2))');",
      "INSERT INTO t2 (g) VALUES ('POINT EMPTY');",
      "SELECT COUNT(*) FROM t1 JOIN t2 ON ST_Intersects(t1.g, t2.g);",
      "SELECT COUNT(*) FROM t1 JOIN t2 ON ST_Contains(t1.g, t2.g);",
      "SELECT COUNT(*) FROM t1 JOIN t2 ON ST_Covers(t1.g, t2.g);",
      "SELECT COUNT(*) FROM t1 JOIN t2 ON ST_Equals(t1.g, t2.g);",
      "SELECT COUNT(*) FROM t1 WHERE g ~= 'POINT(1 1)'::geometry;",
      "SELECT ST_Distance('POINT(0 0)'::geometry, 'POINT(3 4)'::geometry);",
      "SELECT ST_Area('POLYGON((0 0,2 0,2 2,0 2,0 0))');",
      "SELECT ST_Length('LINESTRING(0 0,3 4)');",
      "SELECT ST_Dimension('GEOMETRYCOLLECTION(POINT(0 0))');",
      "SELECT ST_AsText(ST_Boundary('POLYGON((0 0,1 0,1 1,0 0))'));",
      "SELECT ST_AsText(ST_ConvexHull('MULTIPOINT((0 0),(1 0),(0 1))'));",
      "SELECT ST_AsText(ST_Envelope('LINESTRING(0 0,2 3)'));",
      "SELECT ST_AsText(ST_Reverse('LINESTRING(0 0,1 1)'));",
      "SELECT ST_AsText(ST_PointN('LINESTRING(0 0,1 1,2 2)', 2));",
      "SELECT ST_AsText(ST_GeometryN('MULTIPOINT((1 1),(2 2))', 1));",
      "SELECT ST_IsValid('POLYGON((0 0,1 1,0 1,1 0,0 0))');",
      "SELECT ST_IsEmpty('GEOMETRYCOLLECTION EMPTY');",
      "SELECT ST_AsText(ST_Normalize('MULTIPOINT((2 2),(1 1),(1 1))'));",
      "SELECT COUNT(*) FROM t1 JOIN t2 ON ST_DWithin(t1.g, t2.g, 3);",
      "SELECT COUNT(*) FROM t1 JOIN t2 ON ST_Relate(t1.g, t2.g, "
      "'T********');",
  };
  for (const char* sql : corpus) {
    auto r = e.Execute(sql);
    (void)r;
  }
}

void RunSpatterCampaign(uint64_t seed) {
  RunDialectCampaign(engine::Dialect::kPostgis, seed, /*iterations=*/40,
                     /*queries=*/60);
}

void PrintRow(const char* label) {
  std::printf("%-22s %10.1f%% %14.1f%%\n", label,
              Percent(kEngineModules, 4), Percent(kGeosModules, 5));
}

}  // namespace

int main() {
  auto& reg = CoverageRegistry::Instance();
  RegisterSurface();

  std::printf("Table 5: coverage-point coverage per configuration\n");
  std::printf("(instrumented-point analogue of the paper's gcov lines; "
              "'PostGIS' = engine layer,\n 'GEOS' = shared geometry/"
              "topology layer)\n");
  Rule('=');
  std::printf("%-22s %11s %15s\n", "Approach", "PostGIS", "GEOS");
  Rule();

  reg.ResetHits();
  RunSpatterCampaign(5001);
  PrintRow("Spatter");
  const auto spatter_hits = reg.SnapshotHits();

  reg.ResetHits();
  RunUnitTestCorpus();
  PrintRow("Unit Tests");

  // Unit tests + Spatter: merge the snapshots.
  const auto unit_hits = reg.SnapshotHits();
  reg.RestoreHits(spatter_hits);
  for (size_t i = 0; i < unit_hits.size(); ++i) {
    if (unit_hits[i] > 0) reg.Hit(i);
  }
  PrintRow("Unit Tests + Spatter");

  Rule();
  std::printf("\npaper reference (line coverage): Spatter 15.8%%/20.1%%, "
              "Unit Tests 79.5%%/54.8%%,\nUnit Tests + Spatter "
              "79.9%%/55.2%% — Spatter adds incremental coverage on top of "
              "unit tests,\nwhich is the property to reproduce.\n");
  return 0;
}
