// Reproduces Figure 8: the generator ablation — unique bugs over time and
// coverage over time for the Geometry-Aware Generator (GAG) versus the
// random-shape-only baseline (RSG), on the faulty PostGIS-sim.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "common/coverage.h"

using namespace spatter;        // NOLINT
using namespace spatter::bench;  // NOLINT

namespace {

struct Sample {
  double elapsed;
  size_t unique_bugs;
  double engine_cov;
  double geos_cov;
};

double GroupPercent(std::initializer_list<const char*> modules) {
  size_t hit = 0;
  size_t total = 0;
  auto& reg = CoverageRegistry::Instance();
  for (const char* m : modules) {
    hit += reg.HitPoints(m);
    total += reg.TotalPoints(m);
  }
  return total == 0 ? 0.0 : 100.0 * static_cast<double>(hit) /
                                static_cast<double>(total);
}

std::vector<Sample> RunTimed(bool derivative, double seconds) {
  CoverageRegistry::Instance().ResetHits();
  fuzz::CampaignConfig config;
  config.dialect = engine::Dialect::kPostgis;
  config.seed = 8080;
  config.queries_per_iteration = 50;
  config.generator.num_geometries = 10;
  config.generator.derivative_enabled = derivative;
  fuzz::Campaign campaign(config);
  std::vector<Sample> samples;
  campaign.RunForDuration(
      seconds, [&samples](double elapsed, const fuzz::CampaignResult& r) {
        samples.push_back(Sample{
            elapsed, r.unique_bugs.size(),
            GroupPercent({"engine", "edit", "generator", "aei", "oracle",
                          "campaign"}),
            GroupPercent({"relate", "locate", "predicate", "prepared",
                          "canon"})});
      });
  return samples;
}

void PrintSeries(const char* name, const std::vector<Sample>& samples) {
  std::printf("%s:\n  %10s %12s %12s %10s\n", name, "t(s)", "unique bugs",
              "PostGIS cov", "GEOS cov");
  // Print ~8 evenly spaced samples.
  const size_t step = samples.size() <= 8 ? 1 : samples.size() / 8;
  for (size_t i = 0; i < samples.size(); i += step) {
    const auto& s = samples[i];
    std::printf("  %10.2f %12zu %11.1f%% %9.1f%%\n", s.elapsed,
                s.unique_bugs, s.engine_cov, s.geos_cov);
  }
  if (!samples.empty()) {
    const auto& s = samples.back();
    std::printf("  %10.2f %12zu %11.1f%% %9.1f%%  (final)\n", s.elapsed,
                s.unique_bugs, s.engine_cov, s.geos_cov);
  }
}

}  // namespace

int main() {
  // Scaled-down from the paper's 60 minutes to a few seconds per
  // configuration; the comparison (GAG >= RSG in bugs and coverage at
  // every time point) is what matters.
  const double kSeconds = 6.0;

  std::printf("Figure 8: Geometry-Aware Generator (GAG) vs random-shape "
              "generator (RSG)\n");
  Rule('=');
  const auto gag = RunTimed(/*derivative=*/true, kSeconds);
  const auto rsg = RunTimed(/*derivative=*/false, kSeconds);
  PrintSeries("GAG (random-shape + derivative strategies)", gag);
  Rule();
  PrintSeries("RSG (random-shape strategy only)", rsg);
  Rule();

  const size_t gag_bugs = gag.empty() ? 0 : gag.back().unique_bugs;
  const size_t rsg_bugs = rsg.empty() ? 0 : rsg.back().unique_bugs;
  std::printf("unique bugs: GAG %zu vs RSG %zu  (%s)\n", gag_bugs, rsg_bugs,
              gag_bugs >= rsg_bugs ? "shape holds: GAG >= RSG"
                                   : "UNEXPECTED: RSG ahead");
  std::printf("\npaper reference: within one hour GAG found ~7 unique bugs "
              "vs ~3 for RSG, with\nconsistently higher PostGIS and GEOS "
              "coverage.\n");
  return 0;
}
