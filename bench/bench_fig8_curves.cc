// Figure-8 coverage curves at runtime scale: corpus-guided vs pure-random
// site-coverage growth over equal wall-time budgets, on the sharded
// runtime (the duration-budget mode that `--fleet --duration` runs across
// processes).
//
// Gate: summed across seeds, the corpus-guided campaign must cover at
// least as many ENGINE coverage sites as the pure-random campaign at
// equal duration — site-coverage growth is where greybox guidance shows
// up first (unique-fault parity is gated separately in bench_corpus).
// Harness modules (campaign/corpus/generator/aei/oracle) are excluded
// from the count: corpus mode exercises its own instrumentation by
// construction, which would make the gate self-congratulatory.
//
// Also emits the machine-readable curve JSON (fleet/curve.h) that
// `spatter --duration=S --curve-out=FILE` produces, as a format example,
// and gates checkpoint-resume curve fidelity: a campaign SIGKILLed at a
// checkpoint and resumed must re-emit the checkpointed curve prefix
// sample-for-sample and converge to the identical final coverage, bug
// count, and iteration total as the uninterrupted reference at equal
// total budget. (The equal-budget comparison runs on an iteration budget
// — wall-time sample INSTANTS are never reproducible across runs, so the
// reference pin is the restored prefix plus the final totals.)
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/coverage.h"
#include "fleet/checkpoint.h"
#include "fleet/coordinator.h"
#include "fleet/curve.h"
#include "runtime/sharded_campaign.h"

using namespace spatter;         // NOLINT
using namespace spatter::bench;  // NOLINT

namespace {

/// Engine-behaviour sites hit (all modules except the fuzzer's own).
size_t EngineSitesCovered() {
  size_t hit = 0;
  const auto& harness = fuzz::Campaign::HarnessCoverageModules();
  for (const auto& row : CoverageRegistry::Instance().Summaries()) {
    if (harness.count(row.module) > 0) continue;
    hit += row.hit;
  }
  return hit;
}

struct CurveRun {
  size_t engine_sites = 0;
  size_t iterations = 0;
  size_t unique_bugs = 0;
  std::unique_ptr<fleet::CurveRecorder> curve =
      std::make_unique<fleet::CurveRecorder>();
};

CurveRun RunTimed(uint64_t seed, bool corpus_mode, double seconds) {
  CoverageRegistry::Instance().ResetHits();
  runtime::ShardedCampaignConfig config;
  config.base.dialect = engine::Dialect::kPostgis;
  config.base.seed = seed;
  config.base.queries_per_iteration = 50;
  config.base.generator.num_geometries = 10;
  config.base.corpus.enabled = corpus_mode;
  config.base.corpus.mutate_pct = 50;
  config.jobs = 2;
  config.cross_dialect_transfer = false;  // measure the loop, not the merge
  runtime::ShardedCampaign campaign(config);

  CurveRun run;
  auto& registry = CoverageRegistry::Instance();
  const fuzz::CampaignResult result = campaign.RunForDuration(
      seconds, [&run, &registry](double elapsed,
                                 const fuzz::CampaignResult& r) {
        run.curve->Add(elapsed, registry.CoveredSiteCount(),
                       r.unique_bugs.size(), r.iterations_run);
      });
  run.engine_sites = EngineSitesCovered();
  run.iterations = result.iterations_run;
  run.unique_bugs = result.unique_bugs.size();
  return run;
}

void PrintCurve(const char* name, const CurveRun& run) {
  const auto samples = run.curve->samples();
  std::printf("  %-12s %6zu engine sites, %5zu iterations, %3zu bugs, "
              "%4zu curve samples\n",
              name, run.engine_sites, run.iterations, run.unique_bugs,
              samples.size());
}

/// Gate 2: a resumed campaign's curve is the checkpointed prefix,
/// sample-for-sample, and its final totals equal the uninterrupted
/// reference's at equal total budget. Returns false on any mismatch.
bool CheckResumeCurveFidelity() {
  namespace fs = std::filesystem;
  std::printf("\nCheckpoint-resume curve fidelity (iteration budget, "
              "per-iteration COV)\n");

  fleet::FleetConfig base;
  base.base.dialect = engine::Dialect::kPostgis;
  base.base.seed = 3104;
  base.base.iterations = 16;
  base.base.queries_per_iteration = 40;
  base.base.generator.num_geometries = 10;
  base.processes = 1;
  base.jobs = 2;
  base.cov_interval_seconds = 0.0;  // exact coverage restoration

  fleet::FleetCoordinator reference(base);
  const fuzz::CampaignResult ref = reference.Run();
  const size_t ref_sites = reference.fleet_covered_sites();

  const std::string dir = "fig8_resume_ckpt";
  fs::remove_all(dir);
  fleet::FleetConfig killed = base;
  killed.checkpoint_dir = dir;
  killed.checkpoint_interval_seconds = 0.0;
  killed.die_after_frames = 30;  // < 1 + 16 * 2 minimum stream length
  const pid_t pid = ::fork();
  if (pid == 0) {
    fleet::FleetCoordinator coordinator(killed);
    coordinator.Run();
    ::_exit(0);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
    std::printf("FAIL: seamed coordinator was not SIGKILLed mid-run\n");
    return false;
  }

  auto loaded = fleet::LoadCheckpoint(dir);
  if (!loaded.ok()) {
    std::printf("FAIL: %s\n", loaded.status().ToString().c_str());
    return false;
  }
  const std::vector<fleet::CurveSample> prefix = loaded.value().curve;
  fleet::FleetConfig resumed_config = base;
  resumed_config.resume = loaded.Take();
  fleet::FleetCoordinator resumed(resumed_config);
  const fuzz::CampaignResult result = resumed.Run();
  const std::vector<fleet::CurveSample> samples = resumed.curve().samples();

  if (samples.size() < prefix.size()) {
    std::printf("FAIL: resumed curve dropped restored samples\n");
    return false;
  }
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (samples[i].elapsed_seconds != prefix[i].elapsed_seconds ||
        samples[i].covered_sites != prefix[i].covered_sites ||
        samples[i].unique_bugs != prefix[i].unique_bugs ||
        samples[i].iterations != prefix[i].iterations) {
      std::printf("FAIL: restored curve sample %zu is not identical\n", i);
      return false;
    }
  }
  // The restored prefix renders into the resumed JSON byte-identically
  // (the checkpoint codec round-trips doubles exactly).
  if (!prefix.empty()) {
    fleet::CurveInfo info;
    info.label = "resume";
    const std::string json = resumed.curve().ToJson(info);
    char line[256];
    const fleet::CurveSample& last = prefix.back();
    std::snprintf(line, sizeof(line),
                  "{\"t\": %.3f, \"sites\": %llu, \"unique_bugs\": %llu, "
                  "\"iterations\": %llu}",
                  last.elapsed_seconds,
                  static_cast<unsigned long long>(last.covered_sites),
                  static_cast<unsigned long long>(last.unique_bugs),
                  static_cast<unsigned long long>(last.iterations));
    if (json.find(line) == std::string::npos) {
      std::printf("FAIL: restored sample missing from resumed JSON\n");
      return false;
    }
  }
  if (resumed.fleet_covered_sites() != ref_sites ||
      result.unique_bugs.size() != ref.unique_bugs.size() ||
      result.iterations_run != ref.iterations_run) {
    std::printf("FAIL: resumed totals diverge (sites %zu vs %zu, bugs %zu "
                "vs %zu, iterations %zu vs %zu)\n",
                resumed.fleet_covered_sites(), ref_sites,
                result.unique_bugs.size(), ref.unique_bugs.size(),
                result.iterations_run, ref.iterations_run);
    return false;
  }
  std::printf("OK: resumed curve = %zu restored + %zu new samples, final "
              "sites/bugs/iterations identical to uninterrupted\n",
              prefix.size(), samples.size() - prefix.size());
  fs::remove_all(dir);
  return true;
}

}  // namespace

int main() {
  const double kSeconds = 3.0;
  const std::vector<uint64_t> kSeeds = {3101, 3102, 3103};

  std::printf("Figure 8 (runtime scale): site-coverage growth, corpus vs "
              "pure-random, %.1fs per run\n",
              kSeconds);
  Rule();

  size_t corpus_total = 0;
  size_t random_total = 0;
  for (uint64_t seed : kSeeds) {
    std::printf("seed %llu:\n", static_cast<unsigned long long>(seed));
    CurveRun random = RunTimed(seed, /*corpus_mode=*/false, kSeconds);
    PrintCurve("pure-random", random);
    CurveRun corpus = RunTimed(seed, /*corpus_mode=*/true, kSeconds);
    PrintCurve("corpus", corpus);
    random_total += random.engine_sites;
    corpus_total += corpus.engine_sites;

    if (seed == kSeeds.back()) {
      fleet::CurveInfo info;
      info.label = "corpus";
      info.seed = seed;
      info.jobs = 2;
      info.duration_seconds = kSeconds;
      const Status st =
          corpus.curve->WriteJson("fig8_corpus_curve.json", info);
      std::printf("  curve JSON: %s\n",
                  st.ok() ? "fig8_corpus_curve.json" : st.ToString().c_str());
    }
  }

  Rule();
  std::printf("engine sites, summed over %zu seeds: corpus %zu vs "
              "pure-random %zu\n",
              kSeeds.size(), corpus_total, random_total);
  if (corpus_total < random_total) {
    std::printf("FAIL: corpus-guided coverage growth fell below "
                "pure-random at equal duration\n");
    return 1;
  }
  std::printf("OK: corpus-guided >= pure-random at equal duration\n");

  if (!CheckResumeCurveFidelity()) return 1;
  return 0;
}
