// Figure-8 coverage curves at runtime scale: corpus-guided vs pure-random
// site-coverage growth over equal wall-time budgets, on the sharded
// runtime (the duration-budget mode that `--fleet --duration` runs across
// processes).
//
// Gate: summed across seeds, the corpus-guided campaign must cover at
// least as many ENGINE coverage sites as the pure-random campaign at
// equal duration — site-coverage growth is where greybox guidance shows
// up first (unique-fault parity is gated separately in bench_corpus).
// Harness modules (campaign/corpus/generator/aei/oracle) are excluded
// from the count: corpus mode exercises its own instrumentation by
// construction, which would make the gate self-congratulatory.
//
// Also emits the machine-readable curve JSON (fleet/curve.h) that
// `spatter --duration=S --curve-out=FILE` produces, as a format example.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/coverage.h"
#include "fleet/curve.h"
#include "runtime/sharded_campaign.h"

using namespace spatter;         // NOLINT
using namespace spatter::bench;  // NOLINT

namespace {

/// Engine-behaviour sites hit (all modules except the fuzzer's own).
size_t EngineSitesCovered() {
  size_t hit = 0;
  const auto& harness = fuzz::Campaign::HarnessCoverageModules();
  for (const auto& row : CoverageRegistry::Instance().Summaries()) {
    if (harness.count(row.module) > 0) continue;
    hit += row.hit;
  }
  return hit;
}

struct CurveRun {
  size_t engine_sites = 0;
  size_t iterations = 0;
  size_t unique_bugs = 0;
  std::unique_ptr<fleet::CurveRecorder> curve =
      std::make_unique<fleet::CurveRecorder>();
};

CurveRun RunTimed(uint64_t seed, bool corpus_mode, double seconds) {
  CoverageRegistry::Instance().ResetHits();
  runtime::ShardedCampaignConfig config;
  config.base.dialect = engine::Dialect::kPostgis;
  config.base.seed = seed;
  config.base.queries_per_iteration = 50;
  config.base.generator.num_geometries = 10;
  config.base.corpus.enabled = corpus_mode;
  config.base.corpus.mutate_pct = 50;
  config.jobs = 2;
  config.cross_dialect_transfer = false;  // measure the loop, not the merge
  runtime::ShardedCampaign campaign(config);

  CurveRun run;
  auto& registry = CoverageRegistry::Instance();
  const fuzz::CampaignResult result = campaign.RunForDuration(
      seconds, [&run, &registry](double elapsed,
                                 const fuzz::CampaignResult& r) {
        run.curve->Add(elapsed, registry.CoveredSiteCount(),
                       r.unique_bugs.size(), r.iterations_run);
      });
  run.engine_sites = EngineSitesCovered();
  run.iterations = result.iterations_run;
  run.unique_bugs = result.unique_bugs.size();
  return run;
}

void PrintCurve(const char* name, const CurveRun& run) {
  const auto samples = run.curve->samples();
  std::printf("  %-12s %6zu engine sites, %5zu iterations, %3zu bugs, "
              "%4zu curve samples\n",
              name, run.engine_sites, run.iterations, run.unique_bugs,
              samples.size());
}

}  // namespace

int main() {
  const double kSeconds = 3.0;
  const std::vector<uint64_t> kSeeds = {3101, 3102, 3103};

  std::printf("Figure 8 (runtime scale): site-coverage growth, corpus vs "
              "pure-random, %.1fs per run\n",
              kSeconds);
  Rule();

  size_t corpus_total = 0;
  size_t random_total = 0;
  for (uint64_t seed : kSeeds) {
    std::printf("seed %llu:\n", static_cast<unsigned long long>(seed));
    CurveRun random = RunTimed(seed, /*corpus_mode=*/false, kSeconds);
    PrintCurve("pure-random", random);
    CurveRun corpus = RunTimed(seed, /*corpus_mode=*/true, kSeconds);
    PrintCurve("corpus", corpus);
    random_total += random.engine_sites;
    corpus_total += corpus.engine_sites;

    if (seed == kSeeds.back()) {
      fleet::CurveInfo info;
      info.label = "corpus";
      info.seed = seed;
      info.jobs = 2;
      info.duration_seconds = kSeconds;
      const Status st =
          corpus.curve->WriteJson("fig8_corpus_curve.json", info);
      std::printf("  curve JSON: %s\n",
                  st.ok() ? "fig8_corpus_curve.json" : st.ToString().c_str());
    }
  }

  Rule();
  std::printf("engine sites, summed over %zu seeds: corpus %zu vs "
              "pure-random %zu\n",
              kSeeds.size(), corpus_total, random_total);
  if (corpus_total < random_total) {
    std::printf("FAIL: corpus-guided coverage growth fell below "
                "pure-random at equal duration\n");
    return 1;
  }
  std::printf("OK: corpus-guided >= pure-random at equal duration\n");
  return 0;
}
