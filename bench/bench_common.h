// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures.
#ifndef SPATTER_BENCH_BENCH_COMMON_H_
#define SPATTER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "fuzz/campaign.h"

namespace spatter::bench {

/// Runs an AEI campaign against one faulty dialect and returns the set of
/// ground-truth unique bugs it detected.
inline fuzz::CampaignResult RunDialectCampaign(engine::Dialect dialect,
                                               uint64_t seed,
                                               size_t iterations,
                                               size_t queries) {
  fuzz::CampaignConfig config;
  config.dialect = dialect;
  config.seed = seed;
  config.iterations = iterations;
  config.queries_per_iteration = queries;
  config.generator.num_geometries = 10;
  fuzz::Campaign campaign(config);
  return campaign.Run();
}

/// Pretty separator line.
inline void Rule(char c = '-', int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

}  // namespace spatter::bench

#endif  // SPATTER_BENCH_BENCH_COMMON_H_
