// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures.
#ifndef SPATTER_BENCH_BENCH_COMMON_H_
#define SPATTER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>

#include "common/fsio.h"
#include "fuzz/campaign.h"
#include "obs/metrics.h"

namespace spatter::bench {

/// The one wall clock every bench binary times with (the campaign's own
/// monotonic clock, so bench numbers and campaign counters agree).
inline double NowSeconds() { return fuzz::Campaign::NowSeconds(); }

/// Runs an AEI campaign against one faulty dialect and returns the set of
/// ground-truth unique bugs it detected.
inline fuzz::CampaignResult RunDialectCampaign(engine::Dialect dialect,
                                               uint64_t seed,
                                               size_t iterations,
                                               size_t queries) {
  fuzz::CampaignConfig config;
  config.dialect = dialect;
  config.seed = seed;
  config.iterations = iterations;
  config.queries_per_iteration = queries;
  config.generator.num_geometries = 10;
  fuzz::Campaign campaign(config);
  return campaign.Run();
}

/// Pretty separator line.
inline void Rule(char c = '-', int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

/// Emits a bench result as a spatter-metrics-v1 JSON document (the same
/// schema `spatter --metrics-out` writes, so one set of tooling reads
/// both): the registry snapshot carries the phase histograms, `derived`
/// carries the bench's own headline numbers. Atomic write-rename.
inline bool WriteMetricsJson(const std::string& path,
                             const std::string& label, uint64_t seed,
                             const obs::MetricsSnapshot& snapshot,
                             double elapsed_seconds,
                             const std::map<std::string, double>& derived) {
  obs::MetricsJsonInfo info;
  info.label = label;
  info.seed = seed;
  info.fleet = 1;
  info.jobs = 1;
  info.elapsed_seconds = elapsed_seconds;
  info.derived = derived;
  const Status st =
      AtomicWriteFile(path, obs::MetricsToJson(snapshot, info));
  if (!st.ok()) {
    std::fprintf(stderr, "bench: cannot write '%s': %s\n", path.c_str(),
                 st.ToString().c_str());
    return false;
  }
  std::printf("bench: wrote %s\n", path.c_str());
  return true;
}

/// Extracts the number following `"key":` from a JSON text. Not a JSON
/// parser — just enough to read back values from documents our own
/// writer produced (regression gates diffing against a committed
/// baseline). Returns false when the key is absent.
inline bool FindJsonNumber(const std::string& json, const std::string& key,
                           double* out) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = json.find(needle);
  if (at == std::string::npos) return false;
  const char* start = json.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  return true;
}

}  // namespace spatter::bench

#endif  // SPATTER_BENCH_BENCH_COMMON_H_
