// Throughput trajectory bench: one fixed pure-generate workload per
// dialect (30 iterations x 50 queries x 10 geometries at a pinned seed),
// timed end to end, with the telemetry registry's phase histograms
// riding along. Writes BENCH_throughput.json (spatter-metrics-v1) so CI
// archives one comparable throughput sample per commit — the trajectory
// the repo's perf work is judged against.
//
// Regression gate: when a committed baseline exists (argv[1], default
// ../bench/throughput_baseline.json relative to the build dir), a
// dialect running more than kSlowdownGate times slower than its baseline
// iterations/second fails the bench. The slack absorbs machine-to-machine
// and CI-noise variance; a genuine algorithmic regression blows through
// 3x. A missing baseline warns and passes, so the bench bootstraps on
// fresh checkouts.
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "bench_common.h"
#include "obs/metrics.h"

using namespace spatter;         // NOLINT
using namespace spatter::bench;  // NOLINT

namespace {

constexpr uint64_t kSeed = 4242;
constexpr size_t kIterations = 30;
constexpr size_t kQueries = 50;
constexpr size_t kGeometries = 10;
constexpr double kSlowdownGate = 3.0;

constexpr engine::Dialect kDialects[] = {
    engine::Dialect::kPostgis, engine::Dialect::kDuckdbSpatial,
    engine::Dialect::kMysql, engine::Dialect::kSqlserver};

}  // namespace

int main(int argc, char** argv) {
  const std::string baseline_path =
      argc > 1 ? argv[1] : "../bench/throughput_baseline.json";

  std::printf("bench_throughput: fixed workload (%zu x %zu queries, N=%zu, "
              "seed %llu) per dialect\n",
              kIterations, kQueries, kGeometries,
              static_cast<unsigned long long>(kSeed));
  Rule('=');
  std::printf("%-16s %10s %12s %14s\n", "SDBMS", "wall(s)", "iters/s",
              "engine us/q");
  Rule();

  obs::MetricsRegistry::Instance().Reset();
  std::map<std::string, double> derived;
  double elapsed_total = 0.0;
  for (engine::Dialect dialect : kDialects) {
    fuzz::CampaignConfig config;
    config.dialect = dialect;
    config.seed = kSeed;
    config.iterations = kIterations;
    config.queries_per_iteration = kQueries;
    config.generator.num_geometries = kGeometries;
    fuzz::Campaign campaign(config);
    const double t0 = NowSeconds();
    const fuzz::CampaignResult result = campaign.Run();
    const double wall = NowSeconds() - t0;
    elapsed_total += wall;
    const double iters_per_sec =
        wall > 0 ? static_cast<double>(kIterations) / wall : 0.0;
    const double engine_us_per_query =
        1e6 * result.engine_seconds /
        static_cast<double>(kIterations * kQueries);
    const std::string token = engine::DialectCliToken(dialect);
    derived[token + ".iterations_per_second"] = iters_per_sec;
    derived[token + ".engine_us_per_query"] = engine_us_per_query;
    std::printf("%-16s %10.2f %12.1f %14.1f\n",
                engine::DialectName(dialect), wall, iters_per_sec,
                engine_us_per_query);
  }
  Rule();

  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Instance().Snapshot();
  {
    // Statement-cache effectiveness over the whole workload: the AEI hot
    // path re-executes identical CREATE/INSERT text on every reload, so
    // a healthy hit rate is most of the parse traffic.
    const uint64_t hits = snapshot.CounterOr("engine.stmt_cache.hit");
    const uint64_t misses = snapshot.CounterOr("engine.stmt_cache.miss");
    const uint64_t evictions = snapshot.CounterOr("engine.stmt_cache.evict");
    const uint64_t lookups = hits + misses;
    std::printf("stmt-cache: %llu hits / %llu lookups (%.1f%%), "
                "%llu evictions\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(lookups),
                lookups > 0 ? 100.0 * static_cast<double>(hits) /
                                  static_cast<double>(lookups)
                            : 0.0,
                static_cast<unsigned long long>(evictions));
  }
  if (!WriteMetricsJson("BENCH_throughput.json", "throughput", kSeed,
                        snapshot, elapsed_total, derived)) {
    return 1;
  }

  std::ifstream in(baseline_path, std::ios::binary);
  if (!in) {
    std::printf("bench: no baseline at %s — skipping the regression gate "
                "(commit BENCH_throughput.json there to arm it)\n",
                baseline_path.c_str());
    return 0;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string baseline = text.str();
  bool ok = true;
  for (engine::Dialect dialect : kDialects) {
    const std::string key =
        std::string(engine::DialectCliToken(dialect)) +
        ".iterations_per_second";
    double base = 0.0;
    if (!FindJsonNumber(baseline, key, &base) || base <= 0) {
      std::printf("bench: baseline lacks %s — skipping that gate\n",
                  key.c_str());
      continue;
    }
    const double current = derived[key];
    const double ratio = current > 0 ? base / current : kSlowdownGate + 1;
    std::printf("gate: %s baseline %.1f/s, current %.1f/s (%.2fx %s)\n",
                key.c_str(), base, current,
                ratio >= 1 ? ratio : 1 / ratio,
                ratio >= 1 ? "slower" : "faster");
    if (ratio > kSlowdownGate) {
      std::printf("FAIL: %s regressed more than %.0fx vs baseline\n",
                  key.c_str(), kSlowdownGate);
      ok = false;
    }
  }
  if (!ok) return 1;
  std::printf("OK: throughput within %.0fx of baseline\n", kSlowdownGate);
  return 0;
}
