// Reproduces Figure 7: "Average time in Spatter and the SDBMSs across 10
// runs" — total campaign time vs time spent inside the engine, for
// N in {1, 10, 50, 100} geometries per run and 100 random queries, on the
// three dialects the paper plots.
#include <cstdio>
#include <map>
#include <string>

#include "bench_common.h"

using namespace spatter;        // NOLINT
using namespace spatter::bench;  // NOLINT

int main() {
  const size_t kRuns = 10;     // repetitions per configuration (paper: 10)
  const size_t kQueries = 100;  // queries per run (paper: 100)
  const size_t kGeomCounts[] = {1, 10, 50, 100};

  std::printf("Figure 7: average run time, Spatter total vs SDBMS "
              "execution (ms)\n");
  Rule('=');
  std::printf("%-16s %6s %14s %12s %12s\n", "SDBMS", "N", "Spatter(ms)",
              "SDBMS(ms)", "SDBMS share");
  Rule();

  std::map<std::string, double> derived;
  double elapsed_total = 0.0;
  for (engine::Dialect dialect :
       {engine::Dialect::kPostgis, engine::Dialect::kMysql,
        engine::Dialect::kDuckdbSpatial}) {
    for (size_t n : kGeomCounts) {
      double total = 0.0;
      double engine_time = 0.0;
      for (size_t run = 0; run < kRuns; ++run) {
        fuzz::CampaignConfig config;
        config.dialect = dialect;
        config.seed = 6000 + run * 13 + n;
        config.iterations = 1;
        config.queries_per_iteration = kQueries;
        config.generator.num_geometries = n;
        fuzz::Campaign campaign(config);
        const auto result = campaign.Run();
        total += result.total_seconds;
        engine_time += result.engine_seconds;
      }
      const double avg_total_ms = 1000.0 * total / kRuns;
      const double avg_engine_ms = 1000.0 * engine_time / kRuns;
      std::printf("%-16s %6zu %14.2f %12.2f %9.1f%%\n",
                  engine::DialectName(dialect), n, avg_total_ms,
                  avg_engine_ms, 100.0 * avg_engine_ms / avg_total_ms);
      const std::string prefix = std::string(engine::DialectCliToken(dialect)) +
                                 ".n" + std::to_string(n);
      derived[prefix + ".total_ms"] = avg_total_ms;
      derived[prefix + ".engine_ms"] = avg_engine_ms;
      elapsed_total += total;
    }
    Rule();
  }
  WriteMetricsJson("BENCH_fig7_runtime.json", "fig7-runtime", 6000,
                   obs::MetricsRegistry::Instance().Snapshot(), elapsed_total,
                   derived);
  std::printf("shape to reproduce: SDBMS execution dominates total time "
              "(> 90%% for N >= 10)\nand total time grows superlinearly "
              "with N.\n");
  return 0;
}
