// Parallel campaign scaling: wall-clock speedup of the sharded runtime at
// 1/2/4/8 shards over one fixed workload and master seed. Because the
// iteration universe is a pure function of (seed, iteration), every row
// must report the IDENTICAL unique-bug set — the bench asserts it — so the
// speedup column measures the runtime, not a different campaign.
//
// Expected shape on a >= 4-core host: >= 2x speedup at 4 shards. On fewer
// cores the determinism column still holds; only the speedup flattens.
#include <cstdio>
#include <set>
#include <thread>

#include "bench_common.h"
#include "runtime/sharded_campaign.h"

using namespace spatter;         // NOLINT
using namespace spatter::bench;  // NOLINT

int main() {
  const size_t kIterations = 24;
  const size_t kQueries = 60;
  const uint64_t kSeed = 20240042;
  const size_t kJobCounts[] = {1, 2, 4, 8};

  fuzz::CampaignConfig base;
  base.dialect = engine::Dialect::kPostgis;
  base.seed = kSeed;
  base.iterations = kIterations;
  base.queries_per_iteration = kQueries;
  base.generator.num_geometries = 10;

  std::printf("Parallel campaign scaling: %zu iterations x %zu queries, "
              "PostGIS dialect, seed %llu\n",
              kIterations, kQueries,
              static_cast<unsigned long long>(kSeed));
  std::printf("hardware_concurrency: %u\n",
              std::thread::hardware_concurrency());
  Rule('=');
  std::printf("%6s %12s %10s %12s %14s %10s\n", "jobs", "wall(ms)",
              "speedup", "busy(ms)", "engine(ms)", "bugs");
  Rule();

  double baseline_ms = 0.0;
  std::set<faults::FaultId> baseline_bugs;
  bool deterministic = true;
  for (const size_t jobs : kJobCounts) {
    runtime::ShardedCampaignConfig config;
    config.base = base;
    config.jobs = jobs;
    const fuzz::CampaignResult result =
        runtime::ShardedCampaign(config).Run();

    std::set<faults::FaultId> bugs;
    for (const auto& [id, _] : result.unique_bugs) bugs.insert(id);
    if (jobs == 1) {
      baseline_ms = 1000.0 * result.total_seconds;
      baseline_bugs = bugs;
    } else if (bugs != baseline_bugs) {
      deterministic = false;
    }

    const double wall_ms = 1000.0 * result.total_seconds;
    std::printf("%6zu %12.1f %9.2fx %12.1f %14.1f %10zu\n", jobs, wall_ms,
                wall_ms > 0 ? baseline_ms / wall_ms : 0.0,
                1000.0 * result.busy_seconds,
                1000.0 * result.engine_seconds, bugs.size());
  }
  Rule();
  std::printf("unique-bug set identical across all job counts: %s\n",
              deterministic ? "yes" : "NO — DETERMINISM VIOLATED");
  std::printf("shape to reproduce: near-linear speedup up to the core "
              "count; bugs column constant.\n");
  return deterministic ? 0 : 1;
}
