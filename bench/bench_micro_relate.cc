// Micro ablations of the topology core (google-benchmark): relate cost by
// geometry complexity, prepared vs plain predicates, R-tree vs linear
// filtering. These quantify the design choices DESIGN.md calls out.
#include <benchmark/benchmark.h>

#include "algo/canonicalize.h"
#include "common/rng.h"
#include "fuzz/aei.h"
#include "geom/wkt_reader.h"
#include "index/rtree.h"
#include "relate/named_predicates.h"
#include "relate/prepared.h"
#include "relate/relate.h"

namespace {

using namespace spatter;  // NOLINT

// A ring polygon with `n` vertices approximating a circle on integer-ish
// coordinates.
geom::GeomPtr MakeRingPolygon(int n, double radius, double cx, double cy) {
  geom::Polygon::Ring ring;
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    ring.push_back({cx + std::round(radius * std::cos(a)),
                    cy + std::round(radius * std::sin(a) * 0.9)});
  }
  ring.push_back(ring.front());
  return geom::MakePolygon({std::move(ring)});
}

void BM_RelatePolygonPair(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto a = MakeRingPolygon(n, 100, 0, 0);
  const auto b = MakeRingPolygon(n, 100, 60, 0);
  for (auto _ : state) {
    auto im = relate::Relate(*a, *b, {});
    benchmark::DoNotOptimize(im);
  }
  state.SetLabel("vertices=" + std::to_string(n));
}
BENCHMARK(BM_RelatePolygonPair)->Arg(8)->Arg(32)->Arg(128);

void BM_PlainIntersectsManyCandidates(benchmark::State& state) {
  const auto target = MakeRingPolygon(32, 100, 0, 0);
  std::vector<geom::GeomPtr> candidates;
  Rng rng(1);
  for (int i = 0; i < 64; ++i) {
    candidates.push_back(geom::MakePoint(
        static_cast<double>(rng.IntIn(-200, 200)),
        static_cast<double>(rng.IntIn(-200, 200))));
  }
  for (auto _ : state) {
    int hits = 0;
    for (const auto& c : candidates) {
      hits += relate::Intersects(*target, *c, {}).value() ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_PlainIntersectsManyCandidates);

void BM_PreparedIntersectsManyCandidates(benchmark::State& state) {
  const auto target = MakeRingPolygon(32, 100, 0, 0);
  std::vector<geom::GeomPtr> candidates;
  Rng rng(1);
  for (int i = 0; i < 64; ++i) {
    candidates.push_back(geom::MakePoint(
        static_cast<double>(rng.IntIn(-200, 200)),
        static_cast<double>(rng.IntIn(-200, 200))));
  }
  relate::PreparedGeometry prep(*target);
  for (auto _ : state) {
    int hits = 0;
    for (const auto& c : candidates) {
      hits += prep.Intersects(*c).value() ? 1 : 0;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_PreparedIntersectsManyCandidates);

void BM_RTreeQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  index::RTree tree;
  std::vector<index::RTreeEntry> entries;
  for (uint64_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.IntIn(-1000, 1000));
    const double y = static_cast<double>(rng.IntIn(-1000, 1000));
    entries.push_back({geom::Envelope(x, y, x + 10, y + 10), i});
  }
  tree.BulkLoad(entries);
  for (auto _ : state) {
    const double x = static_cast<double>(rng.IntIn(-1000, 1000));
    const auto ids = tree.QueryIds(geom::Envelope(x, x, x + 50, x + 50));
    benchmark::DoNotOptimize(ids);
  }
}
BENCHMARK(BM_RTreeQuery)->Arg(100)->Arg(1000)->Arg(10000);

void BM_LinearFilter(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(7);
  std::vector<index::RTreeEntry> entries;
  for (uint64_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.IntIn(-1000, 1000));
    const double y = static_cast<double>(rng.IntIn(-1000, 1000));
    entries.push_back({geom::Envelope(x, y, x + 10, y + 10), i});
  }
  for (auto _ : state) {
    const double x = static_cast<double>(rng.IntIn(-1000, 1000));
    const geom::Envelope q(x, x, x + 50, x + 50);
    size_t hits = 0;
    for (const auto& e : entries) {
      if (e.box.Intersects(q)) hits++;
    }
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_LinearFilter)->Arg(100)->Arg(1000)->Arg(10000);

void BM_Canonicalize(benchmark::State& state) {
  const auto g = geom::ReadWkt(
                     "GEOMETRYCOLLECTION(MULTILINESTRING((0 2,1 0,3 1,3 1,5 "
                     "0),EMPTY),POLYGON((0 0,10 0,10 10,0 10,0 0)),"
                     "MULTIPOINT((2 2),(1 1),(1 1)))")
                     .Take();
  for (auto _ : state) {
    auto canon = algo::Canonicalize(*g);
    benchmark::DoNotOptimize(canon);
  }
}
BENCHMARK(BM_Canonicalize);

void BM_AffineTransformDatabase(benchmark::State& state) {
  fuzz::DatabaseSpec sdb;
  fuzz::TableSpec table{"t1", {}};
  for (int i = 0; i < 50; ++i) {
    table.rows.push_back("POLYGON((0 0,10 0,10 10,0 10,0 0))");
  }
  sdb.tables.push_back(table);
  Rng rng(3);
  const auto t = fuzz::RandomIntegerAffine(&rng);
  for (auto _ : state) {
    auto out = fuzz::TransformDatabase(sdb, t, /*canonicalize=*/true);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AffineTransformDatabase);

}  // namespace

BENCHMARK_MAIN();
