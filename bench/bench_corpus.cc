// Corpus subsystem bench: codec throughput, mutate-vs-generate iteration
// cost, and the acceptance gate of the corpus PR — at an equal iteration
// budget, corpus mode must rediscover at least as many injected faults as
// the pure-random baseline (averaged over seeds so one lucky stream can't
// decide it). Exits non-zero when the gate fails, so CI can run it.
#include <cstdio>
#include <set>
#include <vector>

#include "bench_common.h"
#include "common/coverage.h"
#include "corpus/codec.h"
#include "corpus/mutator.h"
#include "fuzz/campaign.h"
#include "fuzz/generator.h"

using namespace spatter;  // NOLINT
using spatter::bench::NowSeconds;

namespace {

fuzz::CampaignConfig BudgetConfig(uint64_t seed, bool corpus_mode) {
  fuzz::CampaignConfig config;
  config.dialect = engine::Dialect::kPostgis;
  config.seed = seed;
  config.iterations = 60;
  config.queries_per_iteration = 40;
  config.generator.num_geometries = 10;
  config.corpus.enabled = corpus_mode;
  config.corpus.mutate_pct = 50;
  return config;
}

size_t UniqueBugs(const fuzz::CampaignResult& r) {
  return r.unique_bugs.size();
}

}  // namespace

int main() {
  std::printf("bench_corpus: codec throughput, mutation cost, and the\n"
              "corpus-vs-random fault-discovery gate\n");
  bench::Rule('=');

  // --- Codec throughput ----------------------------------------------------
  {
    Rng rng(17);
    engine::Engine engine(engine::Dialect::kPostgis, false);
    fuzz::GeneratorConfig gconfig;
    gconfig.num_geometries = 12;
    fuzz::GeometryAwareGenerator generator(gconfig, &rng, &engine);
    std::vector<corpus::TestCaseRecord> records;
    for (int i = 0; i < 200; ++i) {
      corpus::TestCaseRecord rec;
      rec.sdb = generator.Generate(nullptr);
      records.push_back(std::move(rec));
    }
    size_t bytes = 0;
    const double t0 = NowSeconds();
    std::vector<std::vector<uint8_t>> encoded;
    for (const auto& rec : records) {
      auto e = corpus::TestCaseCodec::Encode(rec);
      if (!e.ok()) {
        std::fprintf(stderr, "encode failed: %s\n",
                     e.status().ToString().c_str());
        return 1;
      }
      bytes += e.value().size();
      encoded.push_back(e.Take());
    }
    const double t1 = NowSeconds();
    for (const auto& buf : encoded) {
      auto d = corpus::TestCaseCodec::Decode(buf);
      if (!d.ok()) {
        std::fprintf(stderr, "decode failed: %s\n",
                     d.status().ToString().c_str());
        return 1;
      }
    }
    const double t2 = NowSeconds();
    std::printf("codec: %zu records, %.1f KiB total, encode %.0f rec/s "
                "(%.1f MiB/s), decode %.0f rec/s (%.1f MiB/s)\n",
                records.size(), bytes / 1024.0, records.size() / (t1 - t0),
                bytes / (t1 - t0) / (1 << 20), records.size() / (t2 - t1),
                bytes / (t2 - t1) / (1 << 20));
  }

  // --- Mutate vs generate iteration cost -----------------------------------
  {
    Rng rng(23);
    engine::Engine engine(engine::Dialect::kPostgis, false);
    fuzz::GeneratorConfig gconfig;
    fuzz::GeometryAwareGenerator generator(gconfig, &rng, &engine);
    const fuzz::DatabaseSpec parent = generator.Generate(nullptr);
    corpus::MutationEngine mutator;
    const int kRounds = 2000;
    double t0 = NowSeconds();
    for (int i = 0; i < kRounds; ++i) {
      fuzz::DatabaseSpec fresh = generator.Generate(nullptr);
      (void)fresh;
    }
    const double generate_s = NowSeconds() - t0;
    t0 = NowSeconds();
    for (int i = 0; i < kRounds; ++i) {
      fuzz::DatabaseSpec mutant = mutator.MutateDatabase(parent, &rng);
      (void)mutant;
    }
    const double mutate_s = NowSeconds() - t0;
    std::printf("input construction: generate %.1f us/db, mutate %.1f us/db "
                "(mutation %.2fx the cost of generation)\n",
                1e6 * generate_s / kRounds, 1e6 * mutate_s / kRounds,
                mutate_s / generate_s);
  }

  // --- Corpus mode must not lose to pure random at equal budget ------------
  bench::Rule();
  size_t corpus_total = 0;
  size_t random_total = 0;
  const std::vector<uint64_t> kSeeds = {42, 7, 1234, 99, 5, 11};
  std::printf("%-8s %-14s %-14s %-14s %-14s\n", "seed", "random bugs",
              "corpus bugs", "random sites", "corpus sites");
  auto& registry = CoverageRegistry::Instance();
  for (uint64_t seed : kSeeds) {
    // CoveredSiteCount (one atomic load) gives the Figure-8-style
    // site-coverage signal alongside the fault counts.
    registry.ResetHits();
    fuzz::Campaign random_campaign(BudgetConfig(seed, false));
    const size_t random_bugs = UniqueBugs(random_campaign.Run());
    const size_t random_sites = registry.CoveredSiteCount();
    registry.ResetHits();
    fuzz::Campaign corpus_campaign(BudgetConfig(seed, true));
    const size_t corpus_bugs = UniqueBugs(corpus_campaign.Run());
    const size_t corpus_sites = registry.CoveredSiteCount();
    std::printf("%-8llu %-14zu %-14zu %-14zu %-14zu\n",
                static_cast<unsigned long long>(seed), random_bugs,
                corpus_bugs, random_sites, corpus_sites);
    corpus_total += corpus_bugs;
    random_total += random_bugs;
  }
  bench::Rule();
  std::printf("total over %zu seeds at equal budget: random %zu, corpus %zu\n",
              kSeeds.size(), random_total, corpus_total);
  if (corpus_total < random_total) {
    std::printf("FAIL: corpus mode found fewer injected faults than pure "
                "random\n");
    return 1;
  }
  std::printf("OK: corpus mode >= pure random\n");
  return 0;
}
