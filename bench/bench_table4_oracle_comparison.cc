// Reproduces Table 4: "Logic bugs detection comparison" — which of the
// confirmed/fixed logic bugs each oracle can detect — rebuilt on the
// campaign-wide oracle-suite API: every oracle column is a real
// `fuzz::Campaign` whose CampaignConfig selects exactly one oracle, so
// each baseline gets the full generator/scheduler machinery, the same
// budget, and the same per-iteration seed universe as AEI.
//
// Columns:
//   AEI      : the paper's oracle (suite {aei}),
//   Diff X   : cross-family differential (postgis<->mysql, duckdb->mysql),
//   Diff G   : the GEOS pair (postgis<->duckdb; both embed the shared
//              "GEOS" layer, so shared bugs stay invisible — the paper's
//              core motivation),
//   Index    : index on/off differential (suite {index}),
//   TLP      : ternary logic partitioning (suite {tlp}),
//   EET      : equivalent-expression transformations (suite {eet}) —
//              single-engine variant comparison, no reference needed.
// Differential mismatches with no fired confirmed-logic fault count as
// false alarms (the "expected discrepancies" of §5.2).
//
// GATE (CI): AEI's unique confirmed-logic-bug yield must be >= every
// baseline's at equal per-campaign budget; exits 1 otherwise.
#include <cstdio>

#include "bench_common.h"
#include "fuzz/campaign.h"
#include "fuzz/oracle_suite.h"

using namespace spatter;         // NOLINT
using namespace spatter::bench;  // NOLINT
using engine::Dialect;

namespace {

bool IsConfirmedLogic(faults::FaultId id) {
  const auto& info = faults::GetFaultInfo(id);
  return info.kind == faults::BugKind::kLogic &&
         (info.status == faults::BugStatus::kFixed ||
          info.status == faults::BugStatus::kConfirmed);
}

struct OracleScore {
  std::set<faults::FaultId> logic_bugs;
  size_t false_alarms = 0;
  size_t checks = 0;
};

constexpr size_t kIterations = 50;
constexpr size_t kQueries = 40;

/// One campaign with a single-oracle suite; folds confirmed logic bugs
/// and false alarms into `score`.
void RunCampaign(Dialect primary, uint64_t seed, fuzz::OracleKind oracle,
                 Dialect diff_secondary, OracleScore* score) {
  fuzz::CampaignConfig config;
  config.dialect = primary;
  config.seed = seed;
  config.iterations = kIterations;
  config.queries_per_iteration = kQueries;
  config.generator.num_geometries = 10;
  config.oracles.oracles = {oracle};
  config.oracles.diff_secondary = diff_secondary;
  fuzz::Campaign campaign(config);
  const fuzz::CampaignResult result = campaign.Run();
  score->checks += result.checks_run;
  for (const auto& d : result.discrepancies) {
    if (d.is_crash) continue;
    // Ground-truth attribution: every confirmed logic fault that fired
    // while producing the mismatch (the analogue of the paper's
    // fix-commit bisection on reduced cases). Mismatches with no fired
    // confirmed-logic fault are the baselines' false alarms.
    bool any = false;
    for (auto id : d.fault_hits) {
      if (IsConfirmedLogic(id)) {
        score->logic_bugs.insert(id);
        any = true;
      }
    }
    if (!any) score->false_alarms++;
  }
}

}  // namespace

int main() {
  const std::map<Dialect, uint64_t> primaries = {
      {Dialect::kPostgis, 3001},
      {Dialect::kDuckdbSpatial, 3002},
      {Dialect::kMysql, 3003},
  };

  OracleScore aei;
  OracleScore diff_cross;  // cross-family differential
  OracleScore diff_geos;   // the blind GEOS pair
  OracleScore index_oracle;
  OracleScore tlp;
  OracleScore eet;

  for (const auto& [dialect, seed] : primaries) {
    RunCampaign(dialect, seed, fuzz::OracleKind::kAei, Dialect::kMysql,
                &aei);
    // Cross-family: postgis->mysql, duckdb->mysql, mysql->postgis (the
    // spec's degenerate-pair fallback).
    RunCampaign(dialect, seed, fuzz::OracleKind::kDifferential,
                Dialect::kMysql, &diff_cross);
    RunCampaign(dialect, seed, fuzz::OracleKind::kIndex, Dialect::kMysql,
                &index_oracle);
    RunCampaign(dialect, seed, fuzz::OracleKind::kTlp, Dialect::kMysql,
                &tlp);
    RunCampaign(dialect, seed, fuzz::OracleKind::kEet, Dialect::kMysql,
                &eet);
  }
  // The GEOS pair, both directions (smaller budget: two campaigns).
  RunCampaign(Dialect::kPostgis, 3001, fuzz::OracleKind::kDifferential,
              Dialect::kDuckdbSpatial, &diff_geos);
  RunCampaign(Dialect::kDuckdbSpatial, 3002,
              fuzz::OracleKind::kDifferential, Dialect::kPostgis,
              &diff_geos);

  std::printf("Table 4: logic-bug detection by oracle (measured, "
              "oracle-suite campaigns, %zu x %zu checks per campaign)\n",
              kIterations, kQueries);
  Rule('=');
  std::printf("%-10s | %4s | %6s | %6s | %6s | %4s | %4s\n", "component",
              "AEI", "Diff X", "Diff G", "Index", "TLP", "EET");
  Rule();
  auto count_by = [](const OracleScore& s, faults::Component c) {
    int n = 0;
    for (auto id : s.logic_bugs) {
      if (faults::GetFaultInfo(id).component == c) n++;
    }
    return n;
  };
  int totals[6] = {0, 0, 0, 0, 0, 0};
  for (faults::Component comp :
       {faults::Component::kGeos, faults::Component::kPostgis,
        faults::Component::kDuckdb, faults::Component::kMysql}) {
    const int row[6] = {count_by(aei, comp),  count_by(diff_cross, comp),
                        count_by(diff_geos, comp),
                        count_by(index_oracle, comp), count_by(tlp, comp),
                        count_by(eet, comp)};
    for (int i = 0; i < 6; ++i) totals[i] += row[i];
    std::printf("%-10s | %4d | %6d | %6d | %6d | %4d | %4d\n",
                faults::ComponentName(comp), row[0], row[1], row[2], row[3],
                row[4], row[5]);
  }
  Rule();
  std::printf("%-10s | %4d | %6d | %6d | %6d | %4d | %4d\n", "Sum",
              totals[0], totals[1], totals[2], totals[3], totals[4],
              totals[5]);

  int only_aei = 0;
  for (auto id : aei.logic_bugs) {
    if (!diff_cross.logic_bugs.count(id) && !diff_geos.logic_bugs.count(id) &&
        !index_oracle.logic_bugs.count(id) && !tlp.logic_bugs.count(id) &&
        !eet.logic_bugs.count(id)) {
      only_aei++;
    }
  }
  std::printf("\noverlooked by every baseline, found by AEI: %d bugs\n",
              only_aei);
  std::printf("differential false alarms (expected discrepancies): "
              "cross-family %zu, GEOS pair %zu\n",
              diff_cross.false_alarms, diff_geos.false_alarms);
  std::printf("\npaper reference: AEI 20, P.vs.M. 4, P.vs.D. 1, Index 2, "
              "TLP 1; 14 bugs overlooked by all baselines\n");

  // --- Gate ------------------------------------------------------------------
  bool ok = true;
  const struct {
    const char* name;
    const OracleScore* score;
  } baselines[] = {{"Diff X", &diff_cross},
                   {"Diff G", &diff_geos},
                   {"Index", &index_oracle},
                   {"TLP", &tlp},
                   {"EET", &eet}};
  for (const auto& b : baselines) {
    if (aei.logic_bugs.size() < b.score->logic_bugs.size()) {
      std::printf("GATE FAIL: AEI found %zu confirmed logic bugs < %s's "
                  "%zu at equal budget\n",
                  aei.logic_bugs.size(), b.name, b.score->logic_bugs.size());
      ok = false;
    }
  }
  std::printf("%s: AEI %zu >= baselines (Diff X %zu, Diff G %zu, Index "
              "%zu, TLP %zu, EET %zu)\n",
              ok ? "GATE OK" : "GATE FAIL", aei.logic_bugs.size(),
              diff_cross.logic_bugs.size(), diff_geos.logic_bugs.size(),
              index_oracle.logic_bugs.size(), tlp.logic_bugs.size(),
              eet.logic_bugs.size());
  return ok ? 0 : 1;
}
