// Reproduces Table 4: "Logic bugs detection comparison" — which of the
// confirmed/fixed logic bugs each oracle can detect.
//
// For every oracle we run the same generation budget and record which
// injected logic faults its mismatches exercised:
//   AEI      : affine-equivalent-input comparison on each faulty dialect,
//   P. vs M. : differential PostGIS-sim vs MySQL-sim,
//   P. vs D. : differential PostGIS-sim vs DuckDB-Spatial-sim (both embed
//              the shared "GEOS" layer, so shared bugs stay invisible),
//   Index    : index on/off differential,
//   TLP      : ternary logic partitioning.
// Differential mismatches with no fired fault are counted as false alarms
// (the "expected discrepancies" of §5.2).
#include <cstdio>

#include "bench_common.h"
#include "fuzz/aei.h"
#include "fuzz/generator.h"
#include "fuzz/oracles.h"

using namespace spatter;        // NOLINT
using namespace spatter::bench;  // NOLINT
using engine::Dialect;

namespace {

bool IsConfirmedLogic(faults::FaultId id) {
  const auto& info = faults::GetFaultInfo(id);
  return info.kind == faults::BugKind::kLogic &&
         (info.status == faults::BugStatus::kFixed ||
          info.status == faults::BugStatus::kConfirmed);
}

struct OracleScore {
  std::set<faults::FaultId> logic_bugs;
  size_t false_alarms = 0;
  size_t checks = 0;
};

void Record(OracleScore* score, const fuzz::OracleOutcome& outcome) {
  score->checks++;
  if (!outcome.applicable || !outcome.mismatch) return;
  // Ground-truth attribution: every confirmed logic fault that fired while
  // producing the mismatch (the analogue of the paper's fix-commit
  // bisection on reduced cases). Mismatches with no fired fault are the
  // baselines' false alarms — the "expected discrepancies" of §5.2 that
  // make raw cross-SDBMS differential campaigns impractical.
  std::vector<faults::FaultId> fired;
  for (auto id : outcome.fault_hits) {
    if (IsConfirmedLogic(id)) fired.push_back(id);
  }
  if (fired.empty()) {
    score->false_alarms++;
  } else {
    score->logic_bugs.insert(fired.begin(), fired.end());
  }
}

}  // namespace

int main() {
  const size_t kIterations = 50;
  const size_t kQueries = 40;

  // --- AEI across all faulty dialects --------------------------------------
  OracleScore aei;
  for (const auto& [dialect, seed] :
       std::map<Dialect, uint64_t>{{Dialect::kPostgis, 3001},
                                   {Dialect::kDuckdbSpatial, 3002},
                                   {Dialect::kMysql, 3003}}) {
    const auto result =
        RunDialectCampaign(dialect, seed, 2 * kIterations, kQueries);
    aei.checks += result.checks_run;
    for (const auto& [id, _] : result.unique_bugs) {
      if (IsConfirmedLogic(id)) aei.logic_bugs.insert(id);
    }
  }

  // --- Baselines over a shared workload -------------------------------------
  engine::Engine pg(Dialect::kPostgis, true);
  engine::Engine duck(Dialect::kDuckdbSpatial, true);
  engine::Engine my(Dialect::kMysql, true);
  OracleScore p_vs_m;
  OracleScore p_vs_d;
  OracleScore index_oracle;
  OracleScore tlp;

  Rng rng(4242);
  fuzz::GeneratorConfig gen_config;
  gen_config.num_geometries = 10;
  fuzz::GeometryAwareGenerator gen(gen_config, &rng, &pg);
  fuzz::GeometryAwareGenerator gen_my(gen_config, &rng, &my);

  for (size_t iter = 0; iter < kIterations; ++iter) {
    const fuzz::DatabaseSpec sdb = gen.Generate(nullptr);
    const fuzz::DatabaseSpec sdb_my = gen_my.Generate(nullptr);
    for (size_t q = 0; q < kQueries; ++q) {
      const fuzz::QuerySpec query = gen.RandomQuery(sdb);
      Record(&p_vs_m, fuzz::RunDifferentialCheck(&pg, &my, sdb, query));
      Record(&p_vs_d, fuzz::RunDifferentialCheck(&pg, &duck, sdb, query));
      Record(&index_oracle, fuzz::RunIndexCheck(&pg, sdb, query));
      Record(&tlp, fuzz::RunTlpCheck(&pg, sdb, query));
      // MySQL-side baselines for MySQL-specific bugs.
      const fuzz::QuerySpec query_my = gen_my.RandomQuery(sdb_my);
      Record(&p_vs_m,
             fuzz::RunDifferentialCheck(&my, &pg, sdb_my, query_my));
      Record(&index_oracle, fuzz::RunIndexCheck(&my, sdb_my, query_my));
      Record(&tlp, fuzz::RunTlpCheck(&my, sdb_my, query_my));
    }
  }

  // --- Report -----------------------------------------------------------------
  std::printf("Table 4: logic-bug detection by oracle (measured)\n");
  Rule('=');
  std::printf("%-10s | %4s | %8s | %8s | %6s | %4s\n", "component", "AEI",
              "P. vs M.", "P. vs D.", "Index", "TLP");
  Rule();
  auto count_by = [](const OracleScore& s, faults::Component c) {
    int n = 0;
    for (auto id : s.logic_bugs) {
      if (faults::GetFaultInfo(id).component == c) n++;
    }
    return n;
  };
  int totals[5] = {0, 0, 0, 0, 0};
  for (faults::Component comp :
       {faults::Component::kGeos, faults::Component::kPostgis,
        faults::Component::kMysql}) {
    const int row[5] = {count_by(aei, comp), count_by(p_vs_m, comp),
                        count_by(p_vs_d, comp), count_by(index_oracle, comp),
                        count_by(tlp, comp)};
    for (int i = 0; i < 5; ++i) totals[i] += row[i];
    std::printf("%-10s | %4d | %8d | %8d | %6d | %4d\n",
                faults::ComponentName(comp), row[0], row[1], row[2], row[3],
                row[4]);
  }
  Rule();
  std::printf("%-10s | %4d | %8d | %8d | %6d | %4d\n", "Sum", totals[0],
              totals[1], totals[2], totals[3], totals[4]);
  std::printf("\noverlooked by every baseline, found by AEI: ");
  int only_aei = 0;
  for (auto id : aei.logic_bugs) {
    if (!p_vs_m.logic_bugs.count(id) && !p_vs_d.logic_bugs.count(id) &&
        !index_oracle.logic_bugs.count(id) && !tlp.logic_bugs.count(id)) {
      only_aei++;
    }
  }
  std::printf("%d bugs\n", only_aei);
  std::printf("differential false alarms (expected discrepancies): "
              "P.vs.M. %zu, P.vs.D. %zu\n",
              p_vs_m.false_alarms, p_vs_d.false_alarms);
  std::printf("\npaper reference: AEI 20, P.vs.M. 4, P.vs.D. 1, Index 2, "
              "TLP 1; 14 bugs overlooked by all baselines\n");
  return 0;
}
