// Reproduces Table 3: "A classification of the confirmed and fixed bugs"
// (logic vs crash), with the campaign-measured detection beside the
// catalog counts.
#include <cstdio>

#include "bench_common.h"
#include "faults/fault.h"

using namespace spatter;        // NOLINT
using namespace spatter::bench;  // NOLINT

int main() {
  std::printf("Table 3: logic/crash classification of confirmed+fixed "
              "bugs\n");
  Rule('=');

  std::set<faults::FaultId> detected;
  for (const auto& [dialect, seed] :
       std::map<engine::Dialect, uint64_t>{
           {engine::Dialect::kPostgis, 2001},
           {engine::Dialect::kDuckdbSpatial, 2002},
           {engine::Dialect::kMysql, 2003}}) {
    const auto result = RunDialectCampaign(dialect, seed, 50, 60);
    for (const auto& [id, _] : result.unique_bugs) detected.insert(id);
  }

  std::printf("%-16s | %12s %12s | %12s %12s | %5s\n", "SDBMS",
              "logic(fixed)", "logic(conf)", "crash(fixed)", "crash(conf)",
              "Sum");
  Rule();
  int sum_lf = 0;
  int sum_lc = 0;
  int sum_cf = 0;
  int sum_cc = 0;
  for (faults::Component comp :
       {faults::Component::kGeos, faults::Component::kPostgis,
        faults::Component::kMysql, faults::Component::kDuckdb}) {
    int lf = 0;
    int lc = 0;
    int cf = 0;
    int cc = 0;
    int found = 0;
    int total = 0;
    for (const auto& info : faults::FaultCatalog()) {
      if (info.component != comp) continue;
      if (info.status != faults::BugStatus::kFixed &&
          info.status != faults::BugStatus::kConfirmed) {
        continue;
      }
      total++;
      if (detected.count(info.id)) found++;
      const bool fixed = info.status == faults::BugStatus::kFixed;
      if (info.kind == faults::BugKind::kLogic) {
        (fixed ? lf : lc)++;
      } else {
        (fixed ? cf : cc)++;
      }
    }
    sum_lf += lf;
    sum_lc += lc;
    sum_cf += cf;
    sum_cc += cc;
    std::printf("%-16s | %12d %12d | %12d %12d | %2d  (detected %d/%d)\n",
                faults::ComponentName(comp), lf, lc, cf, cc,
                lf + lc + cf + cc, found, total);
  }
  Rule();
  std::printf("%-16s | %12d %12d | %12d %12d | %2d\n", "Sum", sum_lf, sum_lc,
              sum_cf, sum_cc, sum_lf + sum_lc + sum_cf + sum_cc);
  std::printf("\npaper reference: 20 logic bugs (8 fixed, 12 confirmed), "
              "10 crash bugs (10 fixed); sum 30\n");
  return 0;
}
