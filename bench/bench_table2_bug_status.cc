// Reproduces Table 2: "Status of the reported bugs in SDBMSs".
//
// The catalog column restates the paper's reported counts (our fault
// registry mirrors them exactly); the detected column is measured by
// running AEI campaigns against each faulty dialect. Crash bugs surface
// during generation and querying; logic bugs via count mismatches.
#include <cstdio>

#include "bench_common.h"
#include "faults/fault.h"

using namespace spatter;        // NOLINT
using namespace spatter::bench;  // NOLINT

int main() {
  std::printf("Table 2: status of reported bugs per system\n");
  std::printf("(catalog = the paper's reported bugs, mirrored as injectable "
              "faults;\n detected = unique bugs found by this AEI campaign "
              "run)\n");
  Rule('=');

  // One campaign per tested system; GEOS bugs can be found through either
  // GEOS-backed dialect and are attributed to GEOS, as in the paper.
  std::set<faults::FaultId> detected;
  const struct {
    engine::Dialect dialect;
    uint64_t seed;
    size_t iterations;
  } kCampaigns[] = {
      {engine::Dialect::kPostgis, 1001, 100},
      {engine::Dialect::kDuckdbSpatial, 1002, 40},
      {engine::Dialect::kMysql, 1003, 40},
      {engine::Dialect::kSqlserver, 1004, 40},
  };
  for (const auto& c : kCampaigns) {
    const auto result = RunDialectCampaign(c.dialect, c.seed, c.iterations,
                                           /*queries=*/60);
    for (const auto& [id, _] : result.unique_bugs) detected.insert(id);
    std::printf("campaign vs %-16s: %4zu discrepancies, %2zu unique bugs\n",
                engine::DialectName(c.dialect), result.discrepancies.size(),
                result.unique_bugs.size());
  }
  Rule();

  std::printf("%-16s %7s %10s %12s %10s %5s | %9s\n", "SDBMS", "Fixed",
              "Confirmed", "Unconfirmed", "Duplicate", "Sum", "Detected");
  Rule();
  int total_catalog = 0;
  int total_detected = 0;
  for (faults::Component comp :
       {faults::Component::kGeos, faults::Component::kPostgis,
        faults::Component::kDuckdb, faults::Component::kMysql,
        faults::Component::kSqlserver}) {
    int fixed = 0;
    int confirmed = 0;
    int unconfirmed = 0;
    int duplicate = 0;
    int found = 0;
    for (const auto& info : faults::FaultCatalog()) {
      if (info.component != comp) continue;
      switch (info.status) {
        case faults::BugStatus::kFixed:
          fixed++;
          break;
        case faults::BugStatus::kConfirmed:
          confirmed++;
          break;
        case faults::BugStatus::kUnconfirmed:
          unconfirmed++;
          break;
        case faults::BugStatus::kDuplicate:
          duplicate++;
          break;
      }
      if (detected.count(info.id)) found++;
    }
    const int sum = fixed + confirmed + unconfirmed + duplicate;
    total_catalog += sum;
    total_detected += found;
    std::printf("%-16s %7d %10d %12d %10d %5d | %6d/%d\n",
                faults::ComponentName(comp), fixed, confirmed, unconfirmed,
                duplicate, sum, found, sum);
  }
  Rule();
  std::printf("%-16s %7d %10d %12d %10d %5d | %6d/%d\n", "Sum", 18, 12, 4, 1,
              total_catalog, total_detected, total_catalog);
  std::printf("\npaper reference: GEOS 12, PostGIS 11, DuckDB Spatial 6, "
              "MySQL 4, SQL Server 2; sum 35 (34 unique + 1 duplicate)\n");
  return 0;
}
