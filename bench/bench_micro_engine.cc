// Micro ablations of the engine (google-benchmark): join execution paths
// (nested loop vs index scan vs prepared geometry) and statement overhead.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "engine/engine.h"

namespace {

using namespace spatter;  // NOLINT
using engine::Dialect;
using engine::Engine;

// Loads `rows` random points and squares into two tables.
void Load(Engine* e, size_t rows, bool with_index) {
  e->Reset();
  (void)e->Execute("CREATE TABLE a (g geometry);");
  (void)e->Execute("CREATE TABLE b (g geometry);");
  if (with_index) {
    (void)e->Execute("CREATE INDEX ib ON b USING GIST (g);");
  }
  Rng rng(42);
  for (size_t i = 0; i < rows; ++i) {
    const long x = rng.IntIn(-100, 100);
    const long y = rng.IntIn(-100, 100);
    (void)e->Execute("INSERT INTO a (g) VALUES ('POINT(" +
                     std::to_string(x) + " " + std::to_string(y) + ")');");
    (void)e->Execute("INSERT INTO b (g) VALUES ('POLYGON((" +
                     std::to_string(x) + " " + std::to_string(y) + "," +
                     std::to_string(x + 5) + " " + std::to_string(y) + "," +
                     std::to_string(x + 5) + " " + std::to_string(y + 5) +
                     "," + std::to_string(x) + " " + std::to_string(y + 5) +
                     "," + std::to_string(x) + " " + std::to_string(y) +
                     ")');");
  }
}

void BM_JoinNestedLoop(benchmark::State& state) {
  Engine e(Dialect::kMysql, false);  // no index/prepared paths
  Load(&e, static_cast<size_t>(state.range(0)), false);
  for (auto _ : state) {
    auto r = e.Execute(
        "SELECT COUNT(*) FROM a JOIN b ON ST_Within(a.g, b.g);");
    benchmark::DoNotOptimize(r);
  }
  state.counters["pairs"] = static_cast<double>(e.stats().pairs_evaluated);
}
BENCHMARK(BM_JoinNestedLoop)->Arg(10)->Arg(40);

void BM_JoinIndexScan(benchmark::State& state) {
  Engine e(Dialect::kPostgis, false);
  Load(&e, static_cast<size_t>(state.range(0)), true);
  for (auto _ : state) {
    auto r = e.Execute(
        "SELECT COUNT(*) FROM a JOIN b ON ST_Within(a.g, b.g);");
    benchmark::DoNotOptimize(r);
  }
  state.counters["pairs"] = static_cast<double>(e.stats().pairs_evaluated);
}
BENCHMARK(BM_JoinIndexScan)->Arg(10)->Arg(40);

void BM_JoinPreparedPath(benchmark::State& state) {
  Engine e(Dialect::kPostgis, false);
  Load(&e, static_cast<size_t>(state.range(0)), false);
  for (auto _ : state) {
    auto r = e.Execute(
        "SELECT COUNT(*) FROM b JOIN a ON ST_Contains(b.g, a.g);");
    benchmark::DoNotOptimize(r);
  }
  state.counters["prepared"] =
      static_cast<double>(e.stats().prepared_evaluations);
}
BENCHMARK(BM_JoinPreparedPath)->Arg(10)->Arg(40);

void BM_ParseAndExecuteScalar(benchmark::State& state) {
  Engine e(Dialect::kPostgis, false);
  for (auto _ : state) {
    auto r = e.Execute(
        "SELECT ST_Distance('POINT(0 0)'::geometry, "
        "'LINESTRING(3 4,10 10)'::geometry);");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParseAndExecuteScalar);

void BM_InsertWithValidityCheck(benchmark::State& state) {
  Engine e(Dialect::kPostgis, false);
  (void)e.Execute("CREATE TABLE t (g geometry);");
  for (auto _ : state) {
    auto r = e.Execute(
        "INSERT INTO t (g) VALUES ('POLYGON((0 0,8 0,8 8,0 8,0 0),"
        "(2 2,3 2,3 3,2 3,2 2))');");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_InsertWithValidityCheck);

}  // namespace

BENCHMARK_MAIN();
