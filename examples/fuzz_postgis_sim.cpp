// A miniature Spatter testing campaign against the faulty PostGIS-sim:
// generates databases with the geometry-aware generator, validates with
// AEI, deduplicates by ground-truth fault id, and reduces the first logic
// bug down to a minimal SQL reproducer — the full Figure 5 pipeline.
//
// Build & run:  ./build/examples/fuzz_postgis_sim [seed]
#include <cstdio>
#include <cstdlib>

#include "fuzz/campaign.h"
#include "fuzz/reducer.h"
#include "sql/parser.h"

using namespace spatter;  // NOLINT

int main(int argc, char** argv) {
  fuzz::CampaignConfig config;
  config.dialect = engine::Dialect::kPostgis;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2024;
  config.iterations = 30;
  config.queries_per_iteration = 50;
  config.generator.num_geometries = 10;

  std::printf("running Spatter campaign vs faulty PostGIS-sim "
              "(seed=%llu, %zu iterations x %zu queries)...\n",
              static_cast<unsigned long long>(config.seed),
              config.iterations, config.queries_per_iteration);
  fuzz::Campaign campaign(config);
  const fuzz::CampaignResult result = campaign.Run();

  std::printf("\n%zu discrepancies, %zu unique bugs, %.2fs total "
              "(%.2fs inside the engine)\n",
              result.discrepancies.size(), result.unique_bugs.size(),
              result.total_seconds, result.engine_seconds);
  for (const auto& [id, d] : result.unique_bugs) {
    const auto& info = faults::GetFaultInfo(id);
    std::printf("  [%s/%s] %-40s first seen iter %zu (%s)\n",
                faults::ComponentName(info.component),
                faults::BugKindName(info.kind), info.name, d.iteration,
                d.is_crash ? "crash" : d.detail.c_str());
  }

  // Reduce the first logic discrepancy to a minimal reproducer.
  for (const auto& d : result.discrepancies) {
    if (d.is_crash) continue;
    std::printf("\nreducing the first logic discrepancy (%zu rows)...\n",
                d.sdb1.TotalRows());
    fuzz::ReductionStats stats;
    const fuzz::Discrepancy reduced =
        fuzz::ReduceDiscrepancy(&campaign.engine(), d, &stats);
    std::printf("reduced to %zu rows after %zu re-checks\n",
                reduced.sdb1.TotalRows(), stats.checks);
    std::printf("\n-- minimal bug report "
                "--------------------------------------\n");
    for (const auto& stmt : reduced.sdb1.ToSql()) {
      std::printf("%s\n", stmt.c_str());
    }
    std::printf("%s\n", reduced.query.ToSql().c_str());
    std::printf("-- affine transform: %s\n",
                reduced.transform.ToString().c_str());
    std::printf("-- observed: %s\n", reduced.detail.c_str());
    break;
  }
  return 0;
}
