// Derivative-strategy playground: shows how the geometry-aware generator
// turns a handful of random shapes into a web of related geometries by
// pushing them through the engine's editing functions (paper Table 1), and
// how much richer the resulting topological relationships are compared to
// purely random shapes.
//
// Build & run:  ./build/examples/derive_playground [seed]
#include <cstdio>
#include <cstdlib>
#include <set>

#include "algo/edit_functions.h"
#include "fuzz/generator.h"
#include "geom/wkt_reader.h"
#include "relate/relate.h"

using namespace spatter;  // NOLINT

namespace {

// Counts distinct DE-9IM codes among all ordered pairs of a database.
size_t DistinctRelations(const fuzz::DatabaseSpec& sdb) {
  std::vector<geom::GeomPtr> geoms;
  for (const auto& t : sdb.tables) {
    for (const auto& wkt : t.rows) {
      auto g = geom::ReadWkt(wkt);
      if (g.ok()) geoms.push_back(g.Take());
    }
  }
  std::set<std::string> codes;
  for (const auto& a : geoms) {
    for (const auto& b : geoms) {
      auto im = relate::Relate(*a, *b, {});
      if (im.ok()) codes.insert(im.value().Code());
    }
  }
  return codes.size();
}

}  // namespace

int main(int argc, char** argv) {
  const uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  engine::Engine e(engine::Dialect::kPostgis, /*enable_faults=*/false);

  std::printf("== derivative strategy in action ==\n");
  Rng rng(seed);
  fuzz::GeneratorConfig config;
  config.num_geometries = 12;
  fuzz::GeometryAwareGenerator gen(config, &rng, &e);
  std::vector<fuzz::GenerationCrash> crashes;
  const fuzz::DatabaseSpec sdb = gen.Generate(&crashes);
  for (const auto& table : sdb.tables) {
    std::printf("%s:\n", table.name.c_str());
    for (const auto& wkt : table.rows) {
      std::printf("  %s\n", wkt.c_str());
    }
  }

  std::printf("\n== topological diversity: GAG vs random-shape only ==\n");
  for (bool derivative : {true, false}) {
    size_t total = 0;
    for (uint64_t s = 1; s <= 5; ++s) {
      Rng r2(seed * 100 + s);
      fuzz::GeneratorConfig c2;
      c2.num_geometries = 12;
      c2.derivative_enabled = derivative;
      fuzz::GeometryAwareGenerator g2(c2, &r2, &e);
      total += DistinctRelations(g2.Generate(nullptr));
    }
    std::printf("  %-28s %zu distinct DE-9IM codes over 5 databases\n",
                derivative ? "geometry-aware (GAG)" : "random-shape (RSG)",
                total);
  }

  std::printf("\n== the editing-function surface (paper Table 1) ==\n");
  for (const auto& fn : algo::EditFunctions()) {
    std::printf("  %-18s %-18s arity %d\n", fn.name.c_str(),
                algo::EditCategoryName(fn.category), fn.arity);
  }
  return 0;
}
