// Compares the four oracles on the paper's headline scenarios through the
// pluggable oracle-suite API (fuzz/oracle_suite.h): every oracle is a
// fuzz::Oracle behind one interface — the same objects a campaign runs
// with `spatter --oracles=...` — so the demo exercises exactly the
// production code path. Shows why shared-library bugs blind cross-SDBMS
// differential testing (the paper's core motivation for AEI) and how the
// index/TLP oracles only see their slice.
//
// Build & run:  ./build/examples/oracle_comparison
#include <cstdio>
#include <memory>
#include <vector>

#include "fuzz/oracle_suite.h"

using namespace spatter;  // NOLINT
using engine::Dialect;

namespace {

/// The oracle lineup for one scenario: AEI plus every baseline, built
/// through the same factory the campaign uses.
std::vector<std::unique_ptr<fuzz::Oracle>> Lineup(Dialect secondary) {
  fuzz::OracleSuiteSpec spec;
  spec.diff_secondary = secondary;
  std::vector<std::unique_ptr<fuzz::Oracle>> oracles;
  for (fuzz::OracleKind kind :
       {fuzz::OracleKind::kAei, fuzz::OracleKind::kDifferential,
        fuzz::OracleKind::kIndex, fuzz::OracleKind::kTlp}) {
    oracles.push_back(
        fuzz::MakeOracle(kind, Dialect::kPostgis, /*enable_faults=*/true,
                         spec));
  }
  return oracles;
}

void Report(const std::string& label, const fuzz::OracleOutcome& o) {
  if (!o.applicable) {
    std::printf("  %-26s inapplicable\n", label.c_str());
    return;
  }
  std::printf("  %-26s %-10s %s\n", label.c_str(),
              o.crash ? "CRASH" : (o.mismatch ? "MISMATCH" : "consistent"),
              o.detail.c_str());
}

void RunScenario(engine::Engine* pg, const fuzz::DatabaseSpec& sdb,
                 const fuzz::QuerySpec& query, const fuzz::OracleCtx& ctx,
                 Dialect secondary) {
  for (const auto& oracle : Lineup(secondary)) {
    std::string label = oracle->Name();
    if (const auto dialect = oracle->SecondaryDialect()) {
      label += std::string(" (vs ") + engine::DialectName(*dialect) + ")";
    } else if (oracle->Kind() == fuzz::OracleKind::kAei) {
      label += ctx.transform.IsIdentity() ? " (canonicalize)"
                                          : " (" + ctx.transform.ToString() +
                                                ")";
    }
    if (!oracle->AppliesTo(*pg, query)) {
      std::printf("  %-26s inapplicable (declared: predicate missing)\n",
                  label.c_str());
      continue;
    }
    Report(label, oracle->Check(pg, sdb, query, ctx));
  }
}

}  // namespace

int main() {
  engine::Engine pg(Dialect::kPostgis, true);

  // --- Scenario 1: the Listing 6 GEOS bug ----------------------------------
  std::printf("scenario 1: GEOS 'last-one-wins' boundary bug "
              "(paper Listing 6)\n");
  fuzz::DatabaseSpec gc_db;
  gc_db.tables.push_back(fuzz::TableSpec{"t1", {"POINT(0 0)"}});
  gc_db.tables.push_back(fuzz::TableSpec{
      "t2", {"GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 0))"}});
  fuzz::QuerySpec within;
  within.table1 = "t1";
  within.table2 = "t2";
  within.predicate = "ST_Within";
  fuzz::OracleCtx identity;
  identity.canonical_only = true;
  std::printf(" vs DuckDB (both embed GEOS):\n");
  RunScenario(&pg, gc_db, within, identity, Dialect::kDuckdbSpatial);
  std::printf(" vs MySQL (independent engine):\n");
  RunScenario(&pg, gc_db, within, identity, Dialect::kMysql);
  std::printf("  -> both GEOS-backed systems give the same wrong answer: "
              "the GEOS-pair differential is blind.\n\n");

  // --- Scenario 2: a PostGIS-only function ---------------------------------
  std::printf("scenario 2: ST_Covers precision bug (paper Listing 1); "
              "ST_Covers exists only in\nPostGIS/DuckDB, so a MySQL "
              "differential cannot even pose the query\n");
  fuzz::DatabaseSpec cov_db;
  cov_db.tables.push_back(fuzz::TableSpec{"t1", {"LINESTRING(1 1,0 0)"}});
  cov_db.tables.push_back(fuzz::TableSpec{"t2", {"POINT(0.9 0.9)"}});
  fuzz::QuerySpec covers;
  covers.table1 = "t1";
  covers.table2 = "t2";
  covers.predicate = "ST_Covers";
  fuzz::OracleCtx translate;
  translate.transform = algo::AffineTransform::Translation(3, 7);
  RunScenario(&pg, cov_db, covers, translate, Dialect::kMysql);
  std::printf("\n");

  // --- Scenario 3: the GiST index bug --------------------------------------
  std::printf("scenario 3: GiST EMPTY bug (paper Listing 8) — the Index "
              "oracle's home turf\n");
  fuzz::DatabaseSpec idx_db;
  idx_db.tables.push_back(fuzz::TableSpec{"t1", {"POINT EMPTY"}});
  idx_db.tables.push_back(fuzz::TableSpec{"t2", {"POINT EMPTY"}});
  fuzz::QuerySpec same;
  same.table1 = "t1";
  same.table2 = "t2";
  same.predicate = "~=";
  RunScenario(&pg, idx_db, same, identity, Dialect::kMysql);
  std::printf("\nsame lineup, campaign-wide: spatter "
              "--oracles=aei,diff,index,tlp\n");
  return 0;
}
