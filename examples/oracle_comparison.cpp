// Compares the four oracles on the paper's headline scenarios: shows why
// shared-library bugs blind cross-SDBMS differential testing (the paper's
// core motivation for AEI) and how index/TLP oracles only see their slice.
//
// Build & run:  ./build/examples/oracle_comparison
#include <cstdio>

#include "fuzz/aei.h"
#include "fuzz/oracles.h"

using namespace spatter;  // NOLINT
using engine::Dialect;

namespace {

void Report(const char* oracle, const fuzz::OracleOutcome& o) {
  if (!o.applicable) {
    std::printf("  %-22s inapplicable\n", oracle);
    return;
  }
  std::printf("  %-22s %-10s %s\n", oracle,
              o.crash ? "CRASH" : (o.mismatch ? "MISMATCH" : "consistent"),
              o.detail.c_str());
}

}  // namespace

int main() {
  engine::Engine pg(Dialect::kPostgis, true);
  engine::Engine duck(Dialect::kDuckdbSpatial, true);
  engine::Engine my(Dialect::kMysql, true);

  // --- Scenario 1: the Listing 6 GEOS bug ----------------------------------
  std::printf("scenario 1: GEOS 'last-one-wins' boundary bug "
              "(paper Listing 6)\n");
  fuzz::DatabaseSpec gc_db;
  gc_db.tables.push_back(fuzz::TableSpec{"t1", {"POINT(0 0)"}});
  gc_db.tables.push_back(fuzz::TableSpec{
      "t2", {"GEOMETRYCOLLECTION(POINT(0 0),LINESTRING(0 0,1 0))"}});
  fuzz::QuerySpec within;
  within.table1 = "t1";
  within.table2 = "t2";
  within.predicate = "ST_Within";
  Report("AEI (canonicalize)",
         fuzz::RunAeiCheck(&pg, gc_db, within,
                           algo::AffineTransform::Identity(), true));
  Report("PostGIS vs DuckDB",
         fuzz::RunDifferentialCheck(&pg, &duck, gc_db, within));
  Report("PostGIS vs MySQL",
         fuzz::RunDifferentialCheck(&pg, &my, gc_db, within));
  Report("Index on/off", fuzz::RunIndexCheck(&pg, gc_db, within));
  Report("TLP", fuzz::RunTlpCheck(&pg, gc_db, within));
  std::printf("  -> both GEOS-backed systems give the same wrong answer: "
              "P-vs-D is blind.\n\n");

  // --- Scenario 2: a PostGIS-only function ---------------------------------
  std::printf("scenario 2: ST_Covers precision bug (paper Listing 1); "
              "ST_Covers exists only in\nPostGIS/DuckDB, so PostGIS-vs-MySQL "
              "cannot even pose the query\n");
  fuzz::DatabaseSpec cov_db;
  cov_db.tables.push_back(fuzz::TableSpec{"t1", {"LINESTRING(1 1,0 0)"}});
  cov_db.tables.push_back(fuzz::TableSpec{"t2", {"POINT(0.9 0.9)"}});
  fuzz::QuerySpec covers;
  covers.table1 = "t1";
  covers.table2 = "t2";
  covers.predicate = "ST_Covers";
  Report("AEI (translate 3,7)",
         fuzz::RunAeiCheck(&pg, cov_db, covers,
                           algo::AffineTransform::Translation(3, 7), true));
  Report("PostGIS vs MySQL",
         fuzz::RunDifferentialCheck(&pg, &my, cov_db, covers));
  Report("Index on/off", fuzz::RunIndexCheck(&pg, cov_db, covers));
  Report("TLP", fuzz::RunTlpCheck(&pg, cov_db, covers));
  std::printf("\n");

  // --- Scenario 3: the GiST index bug ----------------------------------------
  std::printf("scenario 3: GiST EMPTY bug (paper Listing 8) — the Index "
              "oracle's home turf\n");
  fuzz::DatabaseSpec idx_db;
  idx_db.tables.push_back(fuzz::TableSpec{"t1", {"POINT EMPTY"}});
  idx_db.tables.push_back(fuzz::TableSpec{"t2", {"POINT EMPTY"}});
  fuzz::QuerySpec same;
  same.table1 = "t1";
  same.table2 = "t2";
  same.predicate = "~=";
  Report("Index on/off", fuzz::RunIndexCheck(&pg, idx_db, same));
  Report("PostGIS vs MySQL",
         fuzz::RunDifferentialCheck(&pg, &my, idx_db, same));
  Report("TLP", fuzz::RunTlpCheck(&pg, idx_db, same));
  return 0;
}
