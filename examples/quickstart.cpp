// Quickstart: the three layers of the public API in one tour —
//  1. the geometry/topology library (WKT, DE-9IM, predicates),
//  2. the embedded spatial SQL engine,
//  3. a minimal Affine-Equivalent-Input check.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "algo/affine.h"
#include "algo/canonicalize.h"
#include "engine/engine.h"
#include "fuzz/aei.h"
#include "fuzz/oracles.h"
#include "geom/wkt_reader.h"
#include "relate/named_predicates.h"

using namespace spatter;  // NOLINT

int main() {
  // --- 1. Geometry + DE-9IM ------------------------------------------------
  std::printf("== geometry & topology ==\n");
  auto line = geom::ReadWkt("LINESTRING(0 1,2 0)").Take();
  auto point = geom::ReadWkt("POINT(0.2 0.9)").Take();
  auto im = relate::RelateMatrix(*line, *point).Take();
  std::printf("DE-9IM(%s, %s) = %s\n", line->ToWkt().c_str(),
              point->ToWkt().c_str(), im.Code().c_str());
  std::printf("covers: %s  (paper Listing 1 expects true)\n",
              relate::Covers(*line, *point).value() ? "true" : "false");

  // Canonicalization (paper Figure 6).
  auto messy =
      geom::ReadWkt("MULTILINESTRING((0 2,1 0,3 1,3 1,5 0),EMPTY)").Take();
  std::printf("canonicalize(%s)\n  = %s\n", messy->ToWkt().c_str(),
              algo::Canonicalize(*messy)->ToWkt().c_str());

  // --- 2. The embedded spatial SQL engine ----------------------------------
  std::printf("\n== spatial SQL engine (PostGIS dialect, fixed) ==\n");
  engine::Engine db(engine::Dialect::kPostgis, /*enable_faults=*/false);
  const char* script =
      "CREATE TABLE t1 (g geometry);"
      "CREATE TABLE t2 (g geometry);"
      "INSERT INTO t1 (g) VALUES ('LINESTRING(0 1,2 0)');"
      "INSERT INTO t2 (g) VALUES ('POINT(0.2 0.9)');"
      "SELECT COUNT(*) FROM t1 JOIN t2 ON ST_Covers(t1.g,t2.g);";
  auto result = db.ExecuteScript(script);
  std::printf("Listing 1 query -> %s (expected {1})\n",
              result.value().ToString().c_str());

  // --- 3. One AEI check ------------------------------------------------------
  std::printf("\n== one Affine Equivalent Inputs check ==\n");
  engine::Engine buggy(engine::Dialect::kPostgis, /*enable_faults=*/true);
  fuzz::DatabaseSpec sdb1;
  sdb1.tables.push_back(fuzz::TableSpec{"t1", {"LINESTRING(1 1,0 0)"}});
  sdb1.tables.push_back(fuzz::TableSpec{"t2", {"POINT(0.9 0.9)"}});
  fuzz::QuerySpec query;
  query.table1 = "t1";
  query.table2 = "t2";
  query.predicate = "ST_Covers";
  const auto transform = algo::AffineTransform::Translation(3, 7);
  const auto outcome =
      fuzz::RunAeiCheck(&buggy, sdb1, query, transform, true);
  std::printf("query: %s\ntransform: %s\n", query.ToSql().c_str(),
              transform.ToString().c_str());
  std::printf("outcome: %s %s\n",
              outcome.mismatch ? "MISMATCH (logic bug found!)" : "consistent",
              outcome.detail.c_str());
  for (auto id : outcome.fault_hits) {
    std::printf("  fired fault: %s\n", faults::GetFaultInfo(id).name);
  }
  return 0;
}
